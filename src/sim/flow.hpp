/**
 * @file
 * Flow-level observability: per-hop latency span attribution, the
 * per-(src node, dst node, traffic class) flow matrix, and congestion
 * blame - the "which flows are slow, and which links do they stall on"
 * layer on top of the aggregate telemetry.
 *
 * The aggregate `machine.*.latency.*` stats give the paper's Section 4
 * three-way breakdown but cannot name the slow flows or the links they
 * wait behind. The FlowProbe closes that gap: routers, channel
 * adapters, and endpoints emit one fixed-size FlowHopRecord per packet
 * per hop - arrival, arbitration grant, departure, all cycles the
 * simulation already holds, so an attached probe takes zero additional
 * clock reads and a detached one costs a single pointer test per site.
 *
 * Determinism follows the trace-staging contract (trace/trace.hpp):
 * records emitted from an engine parallel lane are staged per-lane and
 * per-cycle-offset, and the serial replay drains each cycle's bucket in
 * lane order, reproducing the exact stream a serial window-1 run would
 * have produced. Every export (report JSON, matrix CSV, Chrome spans)
 * is therefore byte-identical across thread counts and lookahead
 * windows.
 *
 * Aggregation happens at the canonical serial points:
 *  - apply() folds each hop's queue wait (grant - arrival) and transfer
 *    time (departure - grant) into per-unit *blame* counters, and
 *    appends the hop to the packet's in-flight path log;
 *  - recordDelivery() (called by the destination endpoint during the
 *    serial delivery flush) closes the flight into the flow matrix
 *    cell: packet/flit counts, latency count/sum/min/max plus a log2-
 *    bucketed p99 estimate, hop-count stats, and a worst-packet
 *    exemplar carrying its full hop path.
 *
 * Memory is bounded: flow cells are allocated on first packet (sparse
 * in the number of active (src, dst, class) pairs), per-packet path
 * logs live only while the packet is in flight, and digest_only mode
 * drops the per-cell exemplar paths so a cell is a flat ~200 bytes.
 * Multicast packets are excluded (replicas share one packet id, so a
 * per-packet flight log would be ambiguous).
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"

namespace anton2 {

namespace par {
// Declared in sim/thread_pool.hpp: the calling thread's lane index
// during the engine's parallel phase, or -1 on the serial path.
int currentLane();
} // namespace par

/** The kind of unit a flow hop was recorded at. */
enum class FlowUnitKind : std::uint8_t
{
    Endpoint = 0,     ///< source endpoint injection grant
    Router,           ///< mesh router switch traversal
    Link,             ///< channel adapter torus-link egress
};

/** Snake-case kind name used in the flow exports. */
const char *flowUnitKindName(FlowUnitKind k);

struct FlowProbeConfig
{
    /** Retain Chrome-trace span paths for packets whose id falls on
     * this stride (0 = retain none). */
    std::uint64_t sample = 0;
    /** Digest list lengths (worst flows / most-blamed units). */
    std::size_t topk = 8;
    /** Drop per-cell exemplar paths and per-packet path logs (unless
     * sampling needs them) so memory stays flat per cell. */
    bool digest_only = false;
    /** Cap on retained sampled spans; further samples are counted as
     * dropped, never silently lost. */
    std::size_t max_spans = 4096;
};

/**
 * One per-hop span record. Fixed-size and assembled entirely from
 * cycles the emitting unit already tracks; `cycle` is the departure
 * cycle and doubles as the staging key.
 */
struct FlowHopRecord
{
    Cycle cycle = 0;            ///< departure (tail left the unit)
    Cycle arrival = 0;          ///< head flit buffered at the unit
    Cycle grant = 0;            ///< arbitration / injection grant
    std::uint64_t packet = 0;
    std::int32_t node = -1;     ///< chip the emitting unit sits on
    std::int16_t unit = -1;     ///< router id / adapter index / ep id
    std::int16_t port = -1;     ///< output port where meaningful
    std::int16_t size_flits = 0;
    FlowUnitKind kind = FlowUnitKind::Endpoint;
    std::uint8_t vc = 0;
};

/**
 * Delivery-side record, built by the destination endpoint during the
 * serial delivery flush. Closes out the packet's flight.
 */
struct FlowDeliveryRecord
{
    std::uint64_t packet = 0;
    std::int64_t src_node = 0;
    int src_ep = 0;
    std::int64_t dst_node = 0;
    int dst_ep = 0;
    int tc = 0;                 ///< TrafficClass as an int
    int size_flits = 0;
    int hops = 0;               ///< torus link hops (Packet::hops)
    Cycle birth = 0;            ///< packet creation (latency origin)
    Cycle delivered = 0;
};

/** Flow-matrix key: one cell per (src node, dst node, traffic class). */
struct FlowKey
{
    std::int64_t src = 0;
    std::int64_t dst = 0;
    int tc = 0;

    bool
    operator<(const FlowKey &o) const
    {
        if (src != o.src)
            return src < o.src;
        if (dst != o.dst)
            return dst < o.dst;
        return tc < o.tc;
    }
};

/** Number of log2 latency buckets backing the per-cell p99 estimate. */
inline constexpr int kFlowLatencyBuckets = 32;

/** One flow-matrix cell (allocated on the flow's first delivery). */
struct FlowCell
{
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;
    std::uint64_t lat_sum = 0;
    Cycle lat_min = kNoCycle;
    Cycle lat_max = 0;
    std::uint64_t hop_sum = 0;
    int hop_min = 0;
    int hop_max = 0;
    /** lat_log2[b] counts deliveries whose latency has bit-width b. */
    std::array<std::uint32_t, kFlowLatencyBuckets> lat_log2{};
    std::uint64_t worst_packet = 0;
    Cycle worst_latency = 0;
    /** Worst packet's hop path (empty in digest_only mode). */
    std::vector<FlowHopRecord> worst_path;

    /** Upper edge of the bucket holding the 99th percentile. */
    double p99Estimate() const;
};

/** Blame key: one counter set per registered hop unit. */
struct FlowUnitKey
{
    std::int64_t node = 0;
    FlowUnitKind kind = FlowUnitKind::Endpoint;
    int unit = 0;

    bool
    operator<(const FlowUnitKey &o) const
    {
        if (node != o.node)
            return node < o.node;
        if (kind != o.kind)
            return kind < o.kind;
        return unit < o.unit;
    }
};

/** Per-unit blame counters: where packets waited, and for how long. */
struct FlowUnitBlame
{
    std::string name;             ///< e.g. `r1.2`, `x0p`, `ep3`
    std::uint64_t packets = 0;
    std::uint64_t flits = 0;      ///< packet flits that crossed the unit
    std::uint64_t queue_wait = 0; ///< cycles between arrival and grant
    std::uint64_t xfer_cycles = 0; ///< cycles between grant and departure
};

/**
 * The flow probe. One instance is shared by every component (bound via
 * FlowBinding, null until attached), exactly like TraceSink; record()
 * stages from parallel lanes and Machine::serialPhase drains the
 * current cycle's buckets before flushing deliveries, so every hop of
 * a packet is applied before the delivery that closes its flight.
 */
class FlowProbe
{
  public:
    explicit FlowProbe(const FlowProbeConfig &cfg);

    const FlowProbeConfig &config() const { return cfg_; }

    /** Name a hop unit (bind time, serial). Blame counters and path
     * rendering resolve units through this table. */
    void registerUnit(std::int32_t node, FlowUnitKind kind, int unit,
                      std::string name);

    /** Append one hop record (simulation hot path). */
    void
    record(const FlowHopRecord &r)
    {
        const int lane = par::currentLane();
        if (lane >= 0) [[unlikely]] {
            stage(lane, r);
            return;
        }
        apply(r);
    }

    /** Close a packet's flight into its flow cell (serial flush only). */
    void recordDelivery(const FlowDeliveryRecord &d);

    /** Size the per-lane staging buffers; same contract as
     * TraceSink::configureLanes (call with Engine::laneCount() and the
     * largest lookahead window whenever either changes). */
    void configureLanes(std::size_t lanes, std::size_t window_depth = 1);

    /** Apply cycle @p cycle's staged hop records in lane order (serial
     * replay only). A no-op when nothing is staged. */
    void mergeStaged(Cycle cycle);

    /** Registered unit name, or "?" when unbound. */
    const std::string &unitName(std::int64_t node, FlowUnitKind kind,
                                int unit) const;

    // --- exports -----------------------------------------------------

    /**
     * The deterministic `flows` report section: a digest of the top-K
     * worst flows (by mean latency) and most-blamed links/routers,
     * plus - when @p full_matrix - a dense num_nodes^2 matrix with one
     * row per (src, dst) pair (classes merged per pair; zero rows
     * synthesized so the row count is always num_nodes^2).
     */
    std::string reportJson(bool full_matrix, std::size_t num_nodes,
                           int indent = 2, int depth = 1) const;

    /** Sparse flow-matrix CSV: one row per active (src, dst, class). */
    std::string matrixCsv() const;

    // --- introspection (tests, Chrome-trace export) ------------------

    struct Span
    {
        FlowDeliveryRecord meta;
        std::vector<FlowHopRecord> path;
    };

    const std::map<FlowKey, FlowCell> &cells() const { return cells_; }
    const std::map<FlowUnitKey, FlowUnitBlame> &blame() const
    {
        return blame_;
    }
    /** Delivered spans retained by the `sample` stride, in delivery
     * order (capped at max_spans; see droppedSpans()). */
    const std::vector<Span> &sampledSpans() const { return spans_; }
    std::uint64_t droppedSpans() const { return dropped_spans_; }
    std::uint64_t deliveries() const { return deliveries_; }

  private:
    void stage(int lane, const FlowHopRecord &r);
    void apply(const FlowHopRecord &r);
    bool keepPaths(std::uint64_t packet) const;

    FlowProbeConfig cfg_;
    std::size_t depth_ = 1; ///< staging buckets per lane (window size)
    /** One bucket per (lane, cycle % depth_); a bucket is only touched
     * by its lane's thread during the parallel phase and drained by the
     * serial replay between windows. */
    std::vector<std::vector<std::vector<FlowHopRecord>>> staged_;

    std::map<FlowKey, FlowCell> cells_;
    std::map<FlowUnitKey, FlowUnitBlame> blame_;
    /** In-flight hop paths, erased at delivery. */
    std::unordered_map<std::uint64_t, std::vector<FlowHopRecord>>
        inflight_;
    std::vector<Span> spans_;
    std::uint64_t dropped_spans_ = 0;
    std::uint64_t deliveries_ = 0;
};

/**
 * A component's binding to the probe plus its coordinates. Components
 * hold one (probe null until bound) and emit through flowHopEvent(),
 * which folds the null test, the multicast filter, and the record
 * assembly into one inlined call site.
 */
struct FlowBinding
{
    FlowProbe *probe = nullptr;
    std::int32_t node = -1;
    std::int16_t unit = -1;
};

inline void
flowHopEvent(const FlowBinding &fb, FlowUnitKind kind,
             std::uint64_t packet, int mcast_group, int size_flits,
             Cycle arrival, Cycle grant, Cycle depart, int port, int vc)
{
    if (fb.probe == nullptr || mcast_group >= 0)
        return;
    FlowHopRecord r;
    r.cycle = depart;
    r.arrival = arrival;
    r.grant = grant;
    r.packet = packet;
    r.node = fb.node;
    r.unit = fb.unit;
    r.port = static_cast<std::int16_t>(port);
    r.size_flits = static_cast<std::int16_t>(size_flits);
    r.kind = kind;
    r.vc = static_cast<std::uint8_t>(vc);
    fb.probe->record(r);
}

} // namespace anton2
