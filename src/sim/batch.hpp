/**
 * @file
 * Batch experiment runner: fan a queue of bench config points across
 * worker processes and merge their run reports into one deterministic
 * batch artifact.
 *
 * Each point is an argument vector for an owning bench executable that
 * speaks the shared flag set (--report, --checkpoint-in/out). With
 * warm-start enabled (forks > 0) every point runs twice-phased:
 *
 *   1. a converge run (point args + warm args, typically --auto-steady)
 *      that writes a checkpoint at steady-state convergence, and
 *   2. N measurement forks that each restore that checkpoint
 *      (--checkpoint-in) and run only the measured region.
 *
 * Children are launched fork/exec with a bounded job pool (--jobs);
 * stdout/stderr go to per-run log files in the work directory. The
 * merged artifact strips each report's host section (the only
 * non-deterministic part) and is emitted in point/fork order, so the
 * artifact is byte-identical regardless of how many jobs ran
 * concurrently or in what order they finished.
 */
#pragma once

#include <string>
#include <vector>

namespace anton2 {

/** One batch: the owning bench, its config points, and the fan-out. */
struct BatchConfig
{
    /** Path to the bench executable every point is run through. */
    std::string bench;

    /** One argument vector per config point (no argv[0], no --report /
     * --checkpoint flags - the runner owns those). */
    std::vector<std::vector<std::string>> points;

    /** Max concurrently running child processes. */
    int jobs = 1;

    /** Measurement forks per point; 0 disables warm-start (each point
     * is a single cold run). */
    int forks = 0;

    /** Extra args for the converge run only (e.g. --auto-steady);
     * never passed to the measurement forks. */
    std::vector<std::string> warm_args;

    /** Where checkpoints, per-run reports, and logs land. */
    std::string workdir = ".";

    /** Merged artifact path; empty = return it without writing. */
    std::string out;
};

/** Outcome of a batch: the merged artifact and how many runs failed. */
struct BatchResult
{
    /** Child runs that exited nonzero or produced no report. */
    int failures = 0;

    /** The merged batch artifact JSON (also written to cfg.out). */
    std::string artifact;

    bool ok() const { return failures == 0; }
};

/**
 * Run every point (and its measurement forks) through cfg.bench and
 * merge the reports. Throws std::runtime_error when the batch cannot
 * even start (unwritable workdir/artifact, no points); per-run child
 * failures are recorded in the artifact and counted in failures.
 */
BatchResult runBatch(const BatchConfig &cfg);

/** Split a flat argument string on whitespace ("--batch 4 --k 3" ->
 * {"--batch", "4", "--k", "3"}); no quoting support. */
std::vector<std::string> splitArgs(const std::string &s);

} // namespace anton2
