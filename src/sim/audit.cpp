/**
 * @file
 * Auditor scheduling, violation log, and watchdog trip logic.
 */
#include "sim/audit.hpp"

#include <sstream>

#include "sim/metrics.hpp"

namespace anton2 {

void
Auditor::report(const std::string &check, const std::string &detail)
{
    ++violation_count_;
    if (violations_.size() < cfg_.max_recorded_violations)
        violations_.push_back({ current_cycle_, check, detail });
}

void
Auditor::runChecksNow(Cycle now)
{
    current_cycle_ = now;
    for (auto &[name, fn] : checks_)
        fn(now);
    ++audits_run_;
}

void
Auditor::tick(Cycle now)
{
    if (cfg_.audit_interval != 0 && now >= next_audit_) {
        next_audit_ = now + cfg_.audit_interval;
        runChecksNow(now);
    }
    if (cfg_.watchdog_interval != 0 && now >= next_watchdog_) {
        next_watchdog_ = now + cfg_.watchdog_interval;
        watchdogProbe(now);
    }
}

void
Auditor::watchdogProbe(Cycle now)
{
    if (!probe_)
        return;
    const ProgressProbe p = probe_(now);
    oldest_age_ =
        p.oldest_birth == kNoCycle ? 0 : now - p.oldest_birth;
    // Progress = a delivery since the last probe, or an empty network
    // (idle is not a stall). The stall clock measures how long packets
    // have been in flight with the ejection side completely silent.
    if (p.delivered != last_delivered_ || p.in_network == 0) {
        last_delivered_ = p.delivered;
        last_progress_ = now;
    }
    ejection_stall_ = now - last_progress_;
    if (trip_ || ejection_stall_ < cfg_.stall_threshold
        || p.in_network == 0)
        return;

    // Wedged: no ejection for stall_threshold cycles with packets in
    // flight. Take the forensic snapshot and classify it.
    ++trips_;
    MachineSnapshot snap;
    if (snapshot_)
        snap = snapshot_(now, "watchdog");
    snap.oldest_age = oldest_age_;
    snap.ejection_stall = ejection_stall_;
    analyzeWaitsFor(snap);
    if (snap.verdict != "deadlock")
        snap.verdict = "livelock";
    trip_ = std::move(snap);
    if (on_trip_)
        on_trip_(*trip_);
}

void
Auditor::publishGauges(MetricsRegistry &reg) const
{
    reg.setGauge("machine.audit.audits",
                 static_cast<double>(audits_run_));
    reg.setGauge("machine.audit.violations",
                 static_cast<double>(violation_count_));
    reg.setGauge("machine.audit.watchdog_trips",
                 static_cast<double>(trips_));
    reg.setGauge("machine.audit.ejection_stall",
                 static_cast<double>(ejection_stall_));
    reg.setGauge("machine.audit.oldest_age",
                 static_cast<double>(oldest_age_));
    reg.setGauge("machine.audit.deadlock",
                 trip_ && trip_->verdict == "deadlock" ? 1.0 : 0.0);
    reg.setGauge("machine.audit.livelock",
                 trip_ && trip_->verdict == "livelock" ? 1.0 : 0.0);
}

std::string
Auditor::reportJson() const
{
    std::ostringstream os;
    os << "{\"audits\": " << audits_run_
       << ", \"violations\": " << violation_count_
       << ", \"violation_samples\": [";
    for (std::size_t i = 0; i < violations_.size(); ++i) {
        const auto &v = violations_[i];
        os << (i ? ", " : "") << "{\"cycle\": "
           << jsonNumber(static_cast<double>(v.cycle)) << ", \"check\": "
           << jsonString(v.check) << ", \"detail\": "
           << jsonString(v.detail) << "}";
    }
    os << "], \"watchdog\": {\"tripped\": " << (trip_ ? "true" : "false")
       << ", \"trips\": " << trips_ << ", \"verdict\": "
       << jsonString(trip_ ? trip_->verdict : "none")
       << ", \"trip_cycle\": "
       << jsonNumber(trip_ ? static_cast<double>(trip_->now) : -1.0)
       << ", \"ejection_stall\": "
       << jsonNumber(static_cast<double>(ejection_stall_))
       << ", \"oldest_age\": "
       << jsonNumber(static_cast<double>(oldest_age_)) << ", \"culprits\": [";
    if (trip_) {
        for (std::size_t i = 0; i < trip_->culprits.size(); ++i)
            os << (i ? ", " : "") << jsonString(trip_->culprits[i]);
    }
    os << "]}}";
    return os.str();
}

} // namespace anton2
