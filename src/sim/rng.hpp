/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256++).
 *
 * The simulator must be bit-reproducible given a seed, so every stochastic
 * decision (randomized dimension orders, slice selection, traffic
 * destinations, error injection) draws from an explicitly threaded Rng
 * instance rather than any global generator.
 */
#pragma once

#include <array>
#include <cstdint>

namespace anton2 {

/**
 * xoshiro256++ generator (Blackman & Vigna). Small, fast, and of more than
 * sufficient quality for driving synthetic network traffic.
 */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds produce unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's multiply-shift reduction. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Bound of 0 would be a caller bug; treat it as [0, 1) for safety.
        if (bound <= 1)
            return 0;
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Single uniformly random bit. */
    bool
    bit()
    {
        return (next() >> 63) != 0;
    }

    /** Raw generator state, for checkpointing. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return { state_[0], state_[1], state_[2], state_[3] };
    }

    /** Reinstate generator state saved by state(). */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (std::size_t i = 0; i < 4; ++i)
            state_[i] = s[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace anton2
