/**
 * @file
 * Analytic silicon-area model of the network components (Section 4.4,
 * Tables 1 and 2).
 *
 * The model expresses each area category as unit-area x structural-count:
 * queue area scales with (ports x VCs x buffer depth x flit bits), arbiter
 * accumulator area with (inputs x pattern weights x weight bits), and so
 * on. The unit areas are calibrated once so that the *reference*
 * configuration - the Anton 2 ASIC as built (16 routers, 23 endpoint
 * adapters, 12 channel adapters, 8 VCs, Table 1/2 percentages) -
 * reproduces the paper's numbers exactly. Ablations (e.g. the 2n-VC
 * baseline of Section 2.5, or deeper buffers) then change the structural
 * counts and the model reports how total area shifts.
 *
 * Area figures are reported as percentages of the ASIC die, as in the
 * paper; absolute um^2 are never needed.
 */
#pragma once

#include <array>
#include <string>

#include "routing/vc_promotion.hpp"

namespace anton2 {

/** The three network component types (Table 1). */
enum class NetComponent : int { Router = 0, Endpoint = 1, Channel = 2 };
inline constexpr int kNumNetComponents = 3;

/** The eight area categories (Table 2). */
enum class AreaCategory : int
{
    Queues = 0,
    Reduction,
    Link,
    Config,
    Debug,
    Misc,
    Multicast,
    Arbiters,
};
inline constexpr int kNumAreaCategories = 8;

constexpr const char *
areaCategoryName(AreaCategory c)
{
    switch (c) {
      case AreaCategory::Queues: return "Queues";
      case AreaCategory::Reduction: return "Reduction";
      case AreaCategory::Link: return "Link";
      case AreaCategory::Config: return "Configuration";
      case AreaCategory::Debug: return "Debug";
      case AreaCategory::Misc: return "Miscellaneous";
      case AreaCategory::Multicast: return "Multicast";
      case AreaCategory::Arbiters: return "Arbiters";
    }
    return "?";
}

/** Structural parameters that area scales against. */
struct NetworkSpec
{
    // Component counts per ASIC (Table 1).
    int routers = 16;
    int endpoints = 23;
    int channels = 12;

    // Queue structure.
    int router_ports = 6;
    int adapter_ports = 2;
    int router_vcs = 8;   ///< 2 classes x numUnifiedVcs(policy, 3)
    int channel_vcs = 8;
    int endpoint_vcs = 2; ///< one VC per traffic class (Section 4.4)
    int buf_flits = 8;
    int flit_bits = 192;

    // Arbiter structure (Section 3.3-3.4).
    int weight_bits = 5;
    int patterns = 2;

    // Multicast tables (Section 2.3).
    int mcast_entries = 512;

    /** Spec with the VC counts implied by a deadlock-avoidance policy. */
    static NetworkSpec
    forPolicy(VcPolicy policy)
    {
        NetworkSpec s;
        const int vcs = kNumTrafficClassesForArea * numUnifiedVcs(policy, 3);
        s.router_vcs = vcs;
        s.channel_vcs = vcs;
        return s;
    }

    static constexpr int kNumTrafficClassesForArea = 2;
};

/** Per-component, per-category area as a percentage of the die. */
struct AreaBreakdown
{
    /** [component][category], % of die area (all instances combined). */
    std::array<std::array<double, kNumAreaCategories>, kNumNetComponents>
        pct{};

    double
    componentTotal(NetComponent c) const
    {
        double t = 0;
        for (double v : pct[static_cast<std::size_t>(c)])
            t += v;
        return t;
    }

    double
    categoryTotal(AreaCategory cat) const
    {
        double t = 0;
        for (const auto &row : pct)
            t += row[static_cast<std::size_t>(cat)];
        return t;
    }

    double
    networkTotal() const
    {
        double t = 0;
        for (const auto &row : pct) {
            for (double v : row)
                t += v;
        }
        return t;
    }
};

/**
 * The calibrated area model. Constructed from the paper's Table 1/2
 * percentages at the reference spec; evaluate() rescales each category by
 * its structural count under a modified spec.
 */
class AreaModel
{
  public:
    AreaModel();

    /** Area breakdown (% of die) for an arbitrary configuration. */
    AreaBreakdown evaluate(const NetworkSpec &spec) const;

    /** The reference (as-built Anton 2) breakdown - Tables 1 and 2. */
    const AreaBreakdown &reference() const { return reference_; }

    static NetworkSpec referenceSpec() { return NetworkSpec{}; }

  private:
    /** Structural scaling count for (component, category) under a spec. */
    static double structuralCount(NetComponent c, AreaCategory cat,
                                  const NetworkSpec &spec);

    AreaBreakdown reference_;
    /** unit_[component][category] = %die per structural unit. */
    std::array<std::array<double, kNumAreaCategories>, kNumNetComponents>
        unit_{};
};

} // namespace anton2
