#include "area/area_model.hpp"

namespace anton2 {

namespace {

/**
 * Table 2 of the paper: % of *network* area per (component, category),
 * at the reference configuration. Rows: Router, Endpoint, Channel.
 */
constexpr double kTable2[kNumNetComponents][kNumAreaCategories] = {
    // Queues, Reduction, Link, Config, Debug, Misc, Multicast, Arbiters
    { 21.2, 0.0, 0.0, 3.3, 3.0, 4.3, 0.0, 5.2 },  // Router
    { 2.7, 0.0, 0.0, 2.5, 2.5, 1.0, 3.2, 0.05 },  // Endpoint
    { 22.7, 9.6, 8.9, 2.8, 2.3, 2.0, 2.5, 0.2 },  // Channel
};

/** Table 1: the network occupies 3.4 + 1.1 + 4.7 = 9.2 % of the die. */
constexpr double kNetworkPctOfDie = 3.4 + 1.1 + 4.7;

/** Sum of every Table 2 entry (should be ~100, up to rounding). */
double
table2Total()
{
    double t = 0;
    for (const auto &row : kTable2) {
        for (double v : row)
            t += v;
    }
    return t;
}

} // namespace

double
AreaModel::structuralCount(NetComponent c, AreaCategory cat,
                           const NetworkSpec &spec)
{
    const bool router = c == NetComponent::Router;
    const bool endpoint = c == NetComponent::Endpoint;

    const int count = router ? spec.routers
                             : endpoint ? spec.endpoints
                                        : spec.channels;
    const int ports = router ? spec.router_ports : spec.adapter_ports;
    const int vcs = router ? spec.router_vcs
                           : endpoint ? spec.endpoint_vcs
                                      : spec.channel_vcs;

    switch (cat) {
      case AreaCategory::Queues:
        // Input buffering: ports x VCs x depth x width. This is the
        // category the VC-promotion optimization of Section 2.5 shrinks.
        return static_cast<double>(count) * ports * vcs * spec.buf_flits
               * spec.flit_bits;
      case AreaCategory::Arbiters: {
          // ~3/4 accumulators + weight storage (inputs x patterns x
          // M-bit weights plus (M+1)-bit accumulators), ~1/4 prioritized
          // arbiter logic (Section 4.4).
          const int inputs = router ? spec.router_ports : vcs;
          const double accum =
              static_cast<double>(inputs)
              * (spec.patterns * spec.weight_bits + spec.weight_bits + 1);
          const double prio = static_cast<double>(inputs);
          return count * (0.75 * accum / (2.0 * 5 + 5 + 1)
                          + 0.25 * prio);
      }
      case AreaCategory::Multicast:
        return static_cast<double>(count) * spec.mcast_entries;
      case AreaCategory::Link:
      case AreaCategory::Reduction:
        // Per external channel: framing/CRC/retry and in-network
        // reduction logic - independent of VC/buffer configuration.
        return static_cast<double>(count);
      case AreaCategory::Config:
      case AreaCategory::Debug:
      case AreaCategory::Misc:
        return static_cast<double>(count);
    }
    return static_cast<double>(count);
}

AreaModel::AreaModel()
{
    const NetworkSpec ref = referenceSpec();
    const double to_die = kNetworkPctOfDie / table2Total();
    for (int c = 0; c < kNumNetComponents; ++c) {
        for (int cat = 0; cat < kNumAreaCategories; ++cat) {
            const double pct_die =
                kTable2[static_cast<std::size_t>(c)]
                       [static_cast<std::size_t>(cat)]
                * to_die;
            reference_.pct[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(cat)] = pct_die;
            const double n = structuralCount(static_cast<NetComponent>(c),
                                             static_cast<AreaCategory>(cat),
                                             ref);
            unit_[static_cast<std::size_t>(c)]
                 [static_cast<std::size_t>(cat)] =
                n > 0 ? pct_die / n : 0.0;
        }
    }
}

AreaBreakdown
AreaModel::evaluate(const NetworkSpec &spec) const
{
    AreaBreakdown out;
    for (int c = 0; c < kNumNetComponents; ++c) {
        for (int cat = 0; cat < kNumAreaCategories; ++cat) {
            const double n = structuralCount(static_cast<NetComponent>(c),
                                             static_cast<AreaCategory>(cat),
                                             spec);
            out.pct[static_cast<std::size_t>(c)]
                   [static_cast<std::size_t>(cat)] =
                unit_[static_cast<std::size_t>(c)]
                     [static_cast<std::size_t>(cat)]
                * n;
        }
    }
    return out;
}

} // namespace anton2
