/**
 * @file
 * Section 2.4, Equation (1), Figure 4: the optimization-based search for
 * the on-chip direction-order routing algorithm.
 *
 * Evaluates all 24 direction orders against every permutation switching
 * demand on the external channels (the extreme points of the demand
 * polytope [27]), prints the worst-case mesh-channel load per order, and
 * verifies that V-,U+,U-,V+ is optimal with a worst-case load of two
 * torus channels' worth - with plenty of mesh bandwidth to spare, since a
 * mesh channel (288 Gb/s) carries more than three torus channels' worth
 * (89.6 Gb/s).
 */
#include <cstdio>

#include "analysis/worst_case.hpp"
#include "common.hpp"

using namespace anton2;

int
main(int argc, char **argv)
{
    bench::OptionRegistry reg(
        "Figure 4 / Eq. (1): exhaustive direction-order routing search "
        "(no tunables)");
    if (!reg.parse(argc, argv))
        return 1;
    const ChipLayout layout(23, 3);

    bench::printHeader("Figure 4 / Eq. (1): direction-order routing search");
    std::printf("%-14s %22s\n", "order",
                "worst-case mesh load\n"
                "               (torus channels on one mesh channel)");
    bench::printRule(46);

    const auto results = searchDirectionOrders(layout, 0);
    std::printf("%-14s %6s %12s %10s\n", "", "worst", "#worst-case",
                "mean max");
    for (const auto &r : results) {
        std::printf("%-14s %6d %12d %10.3f%s\n",
                    orderToString(r.order).c_str(), r.worst_load,
                    r.worst_count, r.mean_max_load,
                    r.order == anton2DirOrder() ? "   <- Anton 2" : "");
    }
    bench::printRule(46);

    int anton2_worst = 0;
    SwitchPermutation anton2_perm;
    for (const auto &r : results) {
        if (r.order == anton2DirOrder()) {
            anton2_worst = r.worst_load;
            anton2_perm = r.worst_perm;
        }
    }

    std::printf("\nBest worst-case load found: %d (paper: 2)\n",
                results.front().worst_load);
    std::printf("Anton 2 order (V-,U+,U-,V+) worst-case load: %d\n",
                anton2_worst);

    std::printf("\nA worst-case permutation for the Anton 2 order:\n%s\n",
                permutationToString(anton2_perm).c_str());

    const int eq1_load = maxMeshLoadForPermutation(
        layout, equation1Permutation(), anton2DirOrder(), 0);
    std::printf("\nPaper's Equation (1) permutation:\n%s\n",
                permutationToString(equation1Permutation()).c_str());
    std::printf("Load under the Anton 2 order: %d (paper: 2)\n", eq1_load);

    std::printf("\nMesh channel capacity: 288 Gb/s = %.2f torus channels "
                "(89.6 Gb/s each),\nso a load of 2 leaves substantial "
                "headroom for endpoint traffic (Sec. 2.4).\n",
                288.0 / 89.6);
    return 0;
}
