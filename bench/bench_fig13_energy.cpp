/**
 * @file
 * Figure 13: router energy per flit versus injection rate, for all-zeros,
 * all-ones, and random payloads (Section 4.5).
 *
 * Reproduces the paper's measurement methodology: a continuous stream of
 * single-flit packets is driven through a 3-hop and a 35-hop router chain
 * with no contention; per-hop energy is the difference of the two
 * measurements divided by 32 hops; per-flit energy divides by the
 * injection rate. The flit stream maximizes the activation rate,
 * a = min(r, 1-r). Finally the Section 4.5 model
 *
 *     E = c0 + c1*h + (c2 + c3*n)(a/r)  pJ
 *
 * is re-fit from the measurements; the paper's coefficients are
 * (42.7, 0.837, 34.4, 0.250). Idle (clock-gate/leakage) power is excluded
 * on both sides (the paper's footnote 1).
 */
#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "noc/router.hpp"
#include "power/fit.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

using namespace anton2;

namespace {

enum class Payload { Zeros, Ones, Random };

/** Bresenham pacing with maximized activation rate: a = min(r, 1-r). */
class PacedSource : public Component
{
  public:
    PacedSource(Channel &out, int rate_num, int rate_den, Payload payload,
                std::uint64_t seed)
        : Component("source"),
          out_(out),
          num_(rate_num),
          den_(rate_den),
          payload_(payload),
          rng_(seed)
    {
    }

    void
    tick(Cycle now) override
    {
        bool send;
        if (2 * num_ <= den_) {
            // r <= 1/2: isolated valid cycles.
            acc_ += num_;
            send = acc_ >= den_;
            if (send)
                acc_ -= den_;
        } else {
            // r > 1/2: isolated empty cycles.
            acc_ += den_ - num_;
            const bool gap = acc_ >= den_;
            if (gap)
                acc_ -= den_;
            send = !gap;
        }
        if (!send)
            return;

        FlitPayload data{};
        switch (payload_) {
          case Payload::Zeros:
            break;
          case Payload::Ones:
            data = { ~0ull, ~0ull, ~0ull };
            break;
          case Payload::Random:
            data = { rng_.next(), rng_.next(), rng_.next() };
            break;
        }

        auto pkt = std::make_shared<Packet>();
        pkt->id = ++count_;
        pkt->size_flits = 1;
        pkt->payload = { data };

        Phit phit;
        phit.pkt = pkt;
        phit.vc = 0;
        phit.head = true;
        phit.tail = true;
        phit.payload = data;
        out_.data.send(now, phit);
        ++flits_;

        // Stream statistics for the model regressors.
        if (have_prev_) {
            int h = 0;
            for (std::size_t w = 0; w < data.size(); ++w)
                h += std::popcount(data[w] ^ prev_[w]);
            hamming_sum_ += h;
        }
        int n = 0;
        for (std::uint64_t w : data)
            n += std::popcount(w);
        setbits_sum_ += n;
        prev_ = data;
        have_prev_ = true;
    }

    std::uint64_t flits() const { return flits_; }
    double
    avgHamming() const
    {
        return flits_ > 1 ? hamming_sum_ / static_cast<double>(flits_ - 1)
                          : 0.0;
    }
    double
    avgSetBits() const
    {
        return flits_ ? setbits_sum_ / static_cast<double>(flits_) : 0.0;
    }

  private:
    Channel &out_;
    int num_, den_;
    Payload payload_;
    Rng rng_;
    int acc_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t flits_ = 0;
    double hamming_sum_ = 0;
    double setbits_sum_ = 0;
    FlitPayload prev_{};
    bool have_prev_ = false;
};

/** Consumes flits at full rate and returns credits. */
class Sink : public Component
{
  public:
    explicit Sink(Channel &in) : Component("sink"), in_(in) {}

    void
    tick(Cycle now) override
    {
        if (auto phit = in_.data.take(now))
            in_.credit.send(now, Credit{ phit->vc });
    }

  private:
    Channel &in_;
};

/** A contention-free chain of @p hops routers with energy meters. */
struct Chain
{
    Chain(int hops, int rate_num, int rate_den, Payload payload)
    {
        RouterConfig rcfg;
        rcfg.num_ports = 2;
        rcfg.num_vcs = 1;
        rcfg.buf_flits_per_vc = 8;

        channels.push_back(std::make_unique<Channel>(1, 1));
        for (int i = 0; i < hops; ++i) {
            routers.push_back(std::make_unique<Router>(
                "r" + std::to_string(i), rcfg, [](Packet &) {
                    return RouteDecision{ 1, 0 };
                }));
            meters.push_back(std::make_unique<RouterEnergyMeter>(2));
            routers.back()->setEnergyMeter(meters.back().get());
            channels.push_back(std::make_unique<Channel>(1, 1));
            routers.back()->connectIn(0, *channels[channels.size() - 2]);
            routers.back()->connectOut(1, *channels.back(), 8);
        }
        source = std::make_unique<PacedSource>(*channels.front(), rate_num,
                                               rate_den, payload, 77);
        sink = std::make_unique<Sink>(*channels.back());

        engine.add(*source);
        for (auto &r : routers)
            engine.add(*r);
        engine.add(*sink);
    }

    double
    totalPj() const
    {
        double t = 0;
        for (const auto &m : meters)
            t += m->totalPj();
        return t;
    }

    Engine engine;
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<std::unique_ptr<RouterEnergyMeter>> meters;
    std::vector<std::unique_ptr<Channel>> channels;
    std::unique_ptr<PacedSource> source;
    std::unique_ptr<Sink> sink;
};

struct Measurement
{
    double energy_per_flit_pj;
    double hamming;
    double set_bits;
    double act_per_flit;
};

Measurement
measure(int rate_num, int rate_den, Payload payload, Cycle cycles)
{
    Chain short_chain(3, rate_num, rate_den, payload);
    Chain long_chain(35, rate_num, rate_den, payload);
    short_chain.engine.run(cycles);
    long_chain.engine.run(cycles);

    // The paper's subtraction: (P35 - P3) / 32 hops, then / injection.
    const double delta = long_chain.totalPj() - short_chain.totalPj();
    const double flits =
        static_cast<double>(long_chain.source->flits());

    Measurement out;
    out.energy_per_flit_pj = delta / 32.0 / flits;
    out.hamming = long_chain.source->avgHamming();
    out.set_bits = long_chain.source->avgSetBits();
    const double r = static_cast<double>(rate_num) / rate_den;
    out.act_per_flit = std::min(r, 1.0 - r) / r;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    long cycles_flag = 20000;
    bench::OptionRegistry reg(
        "Figure 13: router energy per flit vs. injection rate and payload "
        "content");
    reg.add("--cycles", "N", "simulated cycles per measurement point "
                             "(default 20000)",
            &cycles_flag);
    if (!reg.parse(argc, argv))
        return 1;
    const auto cycles = static_cast<Cycle>(cycles_flag);

    bench::printHeader(
        "Figure 13: router energy per flit vs. injection rate "
        "(a = min(r, 1-r))");
    std::printf("%8s %12s %12s %12s\n", "rate", "zeros (pJ)", "ones (pJ)",
                "random (pJ)");
    bench::printRule(50);

    const std::pair<int, int> rates[] = { { 1, 10 }, { 1, 5 },  { 3, 10 },
                                          { 2, 5 },  { 1, 2 },  { 3, 5 },
                                          { 7, 10 }, { 4, 5 },  { 9, 10 },
                                          { 1, 1 } };

    std::vector<EnergySample> samples;
    for (const auto &[num, den] : rates) {
        double row[3];
        int col = 0;
        for (Payload p : { Payload::Zeros, Payload::Ones,
                           Payload::Random }) {
            const auto mres = measure(num, den, p, cycles);
            row[col++] = mres.energy_per_flit_pj;
            samples.push_back({ mres.energy_per_flit_pj, mres.hamming,
                                mres.set_bits, mres.act_per_flit });
        }
        std::printf("%8.2f %12.1f %12.1f %12.1f\n",
                    static_cast<double>(num) / den, row[0], row[1],
                    row[2]);
    }
    bench::printRule(50);

    const auto fit = fitEnergyModel(samples);
    std::printf("\nRe-fit model: E = %.1f + %.3f h + (%.1f + %.3f n)(a/r) "
                "pJ   (rms %.2f pJ)\n",
                fit.c0, fit.c1, fit.c2, fit.c3, fit.rms_error_pj);
    std::printf("Paper:        E = 42.7 + 0.837 h + (34.4 + 0.250 n)(a/r) "
                "pJ\n");
    return 0;
}
