/**
 * @file
 * Table 1: contribution of the network component types to the die area
 * (Section 4.4), from the calibrated analytic area model.
 */
#include <cstdio>

#include "area/area_model.hpp"
#include "common.hpp"

using namespace anton2;

int
main()
{
    const AreaModel model;
    const auto spec = AreaModel::referenceSpec();
    const auto area = model.evaluate(spec);

    bench::printHeader("Table 1: network component area");
    std::printf("%-20s %16s %12s %12s\n", "Component", "Component count",
                "% die area", "paper");
    bench::printRule(64);

    struct Row
    {
        const char *name;
        NetComponent c;
        int count;
        double paper;
    };
    const Row rows[] = {
        { "Router", NetComponent::Router, spec.routers, 3.4 },
        { "Endpoint adapter", NetComponent::Endpoint, spec.endpoints, 1.1 },
        { "Channel adapter", NetComponent::Channel, spec.channels, 4.7 },
    };
    double total = 0;
    for (const auto &r : rows) {
        const double pct = area.componentTotal(r.c);
        total += pct;
        std::printf("%-20s %16d %12.1f %12.1f\n", r.name, r.count, pct,
                    r.paper);
    }
    bench::printRule(64);
    std::printf("%-20s %16s %12.1f %12s\n", "Network total", "", total,
                "< 10%");
    return 0;
}
