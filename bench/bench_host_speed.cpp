/**
 * @file
 * Host-performance benchmark for the sharded engine: simulate a fixed
 * open-loop workload serially and on 2/4 worker threads, and report
 * simulated cycles per wall second and flit-hops per wall second for
 * each. Because every inter-component hop crosses a Wire with latency
 * >= 1 and cross-node hops have latency >= the lookahead window, the
 * threaded runs are bit-identical to the serial one - the bench asserts
 * this by comparing delivered packets and flit-hop totals across thread
 * counts, so a scaling number from this harness is always a number for
 * the *same* simulation.
 *
 * `--lookahead` selects the barrier cadence (0 = auto: the machine's
 * minimum torus link latency; 1 = per-cycle barriers, the pre-lookahead
 * engine). All measured thread counts run at the *same* window, so the
 * determinism check stays apples-to-apples.
 *
 * Speedups are computed against the serial (threads == 1) row looked up
 * explicitly - never positionally - and the bench refuses to report
 * speedups if no serial row was measured.
 *
 * `--json` (default BENCH_speed.json) writes the machine-readable
 * report consumed by the CI perf-smoke job. Wall-clock speedup depends
 * on the host's core count; the deterministic columns do not.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/loads.hpp"
#include "common.hpp"
#include "core/machine.hpp"
#include "traffic/driver.hpp"
#include "traffic/patterns.hpp"

using namespace anton2;

namespace {

struct SpeedResult
{
    int threads;
    double wall_seconds;
    Cycle cycles;
    double cycles_per_sec;
    std::uint64_t flit_hops;
    double flit_hops_per_sec;
    std::uint64_t delivered;
    Cycle window; ///< effective lookahead window of the run

    // Engine self-profile: where the wall time went (host_profile.hpp).
    double imbalance;             ///< max/mean per-lane tick seconds
    double barrier_wait_fraction; ///< worst lane's wait share of its span
    double serial_fraction;       ///< serial-replay share of profiled time
    double straggler_shard;       ///< most-often-slowest shard (-1 = none)
    double straggler_share;       ///< its share of the sampled windows
    double class_seconds[kNumHostCompClasses]; ///< sampled attribution
};

std::uint64_t
totalFlitHops(Machine &m)
{
    std::uint64_t hops = 0;
    for (NodeId n = 0; n < m.geom().numNodes(); ++n) {
        const Chip &chip = m.chip(n);
        for (RouterId r = 0;
             r < static_cast<RouterId>(m.layout().numRouters()); ++r)
            hops += chip.router(r).flitsRouted();
    }
    return hops;
}

SpeedResult
runLoad(const std::vector<int> &radix, int cores, double rate,
        Cycle cycles, int threads, Cycle lookahead,
        const bench::HostProfileOptions &host_profile)
{
    MachineConfig cfg;
    cfg.radix = radix;
    cfg.chip.endpoints_per_node = 8;
    cfg.use_packaging = false;
    cfg.fixed_torus_latency = 20;
    cfg.seed = 17;
    cfg.threads = threads;
    cfg.lookahead = lookahead;
    Machine m(cfg);
    // The engine profiler is always on here: the per-row imbalance /
    // attribution columns are this bench's product. Its cost is two
    // clock reads per lane per window plus the sampled attribution
    // pass, which is noise next to the ticks being measured.
    EngineProfileConfig pcfg;
    pcfg.sample_every = static_cast<Cycle>(host_profile.sample_every);
    Instrumentation pinst;
    pinst.host_profile = pcfg;
    m.attachInstrumentation(pinst);

    UniformPattern pat(m.geom());
    OpenLoopDriver::Config dcfg;
    dcfg.cores = firstEndpoints(cores);
    dcfg.rate = rate;
    dcfg.pattern = &pat;
    OpenLoopDriver driver(m, dcfg);
    m.engine().add(driver);

    HostProfiler prof;
    prof.beginPhase("run");
    m.run(RunSpec::forCycles(cycles));
    prof.endPhase();
    host_profile.write(m); // timeline (single-thread-count runs only)

    SpeedResult r;
    r.threads = threads;
    r.wall_seconds = prof.wallSeconds();
    r.cycles = cycles;
    r.cycles_per_sec = prof.cyclesPerSec(cycles);
    r.flit_hops = totalFlitHops(m);
    r.flit_hops_per_sec =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.flit_hops) / r.wall_seconds
            : 0.0;
    r.delivered = m.totalDelivered();
    r.window = m.lookaheadWindow();

    const EngineProfiler &ep = *m.hostProfile();
    r.imbalance = ep.imbalance();
    double worst_wait = 0.0;
    for (std::size_t l = 0; l < ep.lanes(); ++l) {
        const double span = ep.laneTickSeconds(l) + ep.laneWaitSeconds(l);
        if (span > 0.0)
            worst_wait = std::max(worst_wait,
                                  ep.laneWaitSeconds(l) / span);
    }
    r.barrier_wait_fraction = worst_wait;
    r.serial_fraction = ep.profiledSeconds() > 0.0
                            ? ep.serialSeconds() / ep.profiledSeconds()
                            : 0.0;
    r.straggler_shard =
        ep.stragglerShard() == EngineProfiler::npos
            ? -1.0
            : static_cast<double>(ep.stragglerShard());
    r.straggler_share =
        ep.sampledWindows() > 0
            ? static_cast<double>(ep.stragglerWindows())
                  / static_cast<double>(ep.sampledWindows())
            : 0.0;
    for (std::size_t c = 0; c < kNumHostCompClasses; ++c)
        r.class_seconds[c] =
            ep.classSeconds(static_cast<HostCompClass>(c));
    return r;
}

/** Parse a comma-separated thread-count list ("1,2,4"); empty on error. */
std::vector<int>
parseThreadList(const char *csv)
{
    std::vector<int> out;
    const char *p = csv;
    while (*p != '\0') {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p || v < 1)
            return {};
        out.push_back(static_cast<int>(v));
        p = end;
        if (*p == ',')
            ++p;
        else if (*p != '\0')
            return {};
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    long kx = 4, ky = 4, kz = 4;
    long cores = 4, cycles_flag = 20000, max_threads = 4;
    long lookahead = 0; // 0 = auto: the machine's min torus link latency
    double rate = 0.0;  // 0 = 60% of the analytic saturation point
    const char *json_path = "BENCH_speed.json";
    const char *threads_csv = nullptr;
    bench::HostProfileOptions host_profile;
    bench::OptionRegistry reg(
        "Host speed: simulated cycles/sec and flit-hops/sec, serial vs. "
        "2/4 engine worker threads (bit-identical results)");
    reg.add("--kx", "N", "torus X radix (default 4)", &kx);
    reg.add("--ky", "N", "torus Y radix (default 4)", &ky);
    reg.add("--kz", "N", "torus Z radix (default 4)", &kz);
    reg.add("--cores", "N", "injecting cores per node (default 4)",
            &cores);
    reg.add("--cycles", "N", "simulated cycles per run (default 20000)",
            &cycles_flag);
    reg.add("--rate", "R",
            "offered packets/core/cycle (default: 60% of saturation)",
            &rate);
    reg.add("--max-threads", "N",
            "largest worker count measured; doubles up from 1 "
            "(default 4)",
            &max_threads);
    reg.add("--threads-list", "CSV",
            "explicit thread counts to measure (e.g. 1,2,4; overrides "
            "--max-threads; must include 1 for speedups)",
            &threads_csv);
    reg.add("--lookahead", "N",
            "cycles per barrier window: 0 = auto (min torus link "
            "latency, default), 1 = per-cycle barriers",
            &lookahead);
    reg.add("--json", "PATH",
            "machine-readable report path (default BENCH_speed.json)",
            &json_path);
    host_profile.registerInto(reg);
    if (!reg.parse(argc, argv))
        return 1;
    if (!host_profile.validate())
        return 1;
    if (cycles_flag < 1 || max_threads < 1 || cores < 1
        || lookahead < 0) {
        std::fprintf(stderr, "error: --cycles/--max-threads/--cores must "
                             "be >= 1 and --lookahead >= 0\n");
        return 1;
    }
    if (!bench::validateOutputPaths({ json_path }))
        return 1;
    std::vector<int> thread_counts;
    if (threads_csv != nullptr) {
        thread_counts = parseThreadList(threads_csv);
        if (thread_counts.empty()) {
            std::fprintf(stderr, "error: --threads-list wants positive "
                                 "integers like 1,2,4\n");
            return 1;
        }
        bool has_serial = false;
        for (int t : thread_counts)
            has_serial = has_serial || t == 1;
        if (!has_serial) {
            std::fprintf(stderr,
                         "error: no serial (threads == 1) run requested; "
                         "speedups need a serial baseline - include 1 in "
                         "--threads-list\n");
            return 1;
        }
    } else {
        for (int t = 1; t <= static_cast<int>(max_threads); t *= 2)
            thread_counts.push_back(t);
    }
    if (!bench::validateTimelineSingleRun(host_profile,
                                          thread_counts.size()))
        return 1;
    const std::vector<int> radix{ static_cast<int>(kx),
                                  static_cast<int>(ky),
                                  static_cast<int>(kz) };
    const auto cycles = static_cast<Cycle>(cycles_flag);

    if (rate <= 0.0) {
        // 60% of the analytic uniform-traffic saturation point: high
        // enough to keep every router busy, low enough to stay out of
        // the congested regime where queue scans dominate.
        ChipConfig chip;
        chip.endpoints_per_node = 8;
        const TorusGeom geom(radix);
        const ChipLayout layout(8, 3);
        LoadModel lm(geom, layout, chip, 1);
        Rng lrng(2);
        UniformPattern uniform(geom);
        lm.addPattern(0, uniform, firstEndpoints(static_cast<int>(cores)),
                      300, lrng);
        rate = 0.6 * lm.idealCoreThroughput(0);
    }

    bench::printHeader(
        "Host speed: sharded engine, serial vs. threaded (same "
        "simulation, bit-identical results)");
    std::printf("torus %dx%dx%d, %ld cores/node, rate %.4f pkt/core/cyc, "
                "%llu cycles\n",
                radix[0], radix[1], radix[2], cores, rate,
                static_cast<unsigned long long>(cycles));

    std::vector<SpeedResult> results;
    for (int t : thread_counts)
        results.push_back(runLoad(radix, static_cast<int>(cores), rate,
                                  cycles, t,
                                  static_cast<Cycle>(lookahead),
                                  host_profile));

    // Speedup denominator: the serial row, found by its thread count.
    // Never assume row 0 is serial - the measured set is configurable.
    const SpeedResult *serial = nullptr;
    for (const SpeedResult &r : results) {
        if (r.threads == 1) {
            serial = &r;
            break;
        }
    }
    if (serial == nullptr) {
        std::fprintf(stderr, "error: no serial (threads == 1) run "
                             "measured; speedups need a serial "
                             "baseline - include 1 in --threads-list\n");
        return 1;
    }

    std::printf("lookahead window: %llu cycle(s)%s\n",
                static_cast<unsigned long long>(serial->window),
                lookahead == 0 ? " (auto)" : "");
    std::printf("%8s %12s %14s %16s %10s %8s %8s\n", "threads",
                "wall (s)", "kcycles/s", "Mflit-hops/s", "speedup",
                "imbal", "wait");
    bench::printRule(82);

    bool identical = true;
    for (const SpeedResult &r : results) {
        identical = identical && r.delivered == serial->delivered
                    && r.flit_hops == serial->flit_hops;
        const double speedup =
            r.wall_seconds > 0.0 ? serial->wall_seconds / r.wall_seconds
                                 : 0.0;
        std::printf("%8d %12.3f %14.2f %16.2f %9.2fx %8.2f %7.0f%%\n",
                    r.threads, r.wall_seconds, r.cycles_per_sec / 1e3,
                    r.flit_hops_per_sec / 1e6, speedup, r.imbalance,
                    100.0 * r.barrier_wait_fraction);
    }
    bench::printRule(82);
    std::printf("deterministic across thread counts: %s  (%llu packets "
                "delivered, %llu flit-hops)\n",
                identical ? "yes" : "NO - BUG",
                static_cast<unsigned long long>(serial->delivered),
                static_cast<unsigned long long>(serial->flit_hops));

    std::vector<std::string> rows;
    for (const SpeedResult &r : results) {
        bench::JsonObj classes;
        for (std::size_t c = 0; c < kNumHostCompClasses; ++c)
            classes.add(hostCompClassName(static_cast<HostCompClass>(c)),
                        bench::num(r.class_seconds[c]));
        rows.push_back(
            bench::JsonObj()
                .add("threads", bench::num(r.threads))
                .add("wall_seconds", bench::num(r.wall_seconds))
                .add("cycles_per_sec", bench::num(r.cycles_per_sec))
                .add("flit_hops_per_sec", bench::num(r.flit_hops_per_sec))
                .add("speedup",
                     bench::num(r.wall_seconds > 0.0
                                    ? serial->wall_seconds
                                          / r.wall_seconds
                                    : 0.0))
                .add("delivered",
                     bench::num(static_cast<double>(r.delivered)))
                .add("imbalance", bench::num(r.imbalance))
                .add("barrier_wait_fraction",
                     bench::num(r.barrier_wait_fraction))
                .add("serial_fraction", bench::num(r.serial_fraction))
                .add("straggler_shard", bench::num(r.straggler_shard))
                .add("straggler_share", bench::num(r.straggler_share))
                .add("class_seconds", classes.dump(0))
                .dump(0));
    }
    const auto config =
        bench::JsonObj()
            .add("kx", bench::num(radix[0]))
            .add("ky", bench::num(radix[1]))
            .add("kz", bench::num(radix[2]))
            .add("cores", bench::num(static_cast<double>(cores)))
            .add("rate", bench::num(rate))
            .add("cycles", bench::num(static_cast<double>(cycles)))
            .add("lookahead", bench::num(static_cast<double>(lookahead)))
            .add("window",
                 bench::num(static_cast<double>(serial->window)))
            .dump(0);
    bench::writeFile(json_path,
                     bench::JsonObj()
                         .add("bench", bench::str("host_speed"))
                         .add("config", config)
                         .add("rows", bench::arr(rows))
                         .add("deterministic",
                              identical ? "true" : "false")
                         .dump()
                         + "\n");
    std::printf("JSON report written to %s\n", json_path);
    return identical ? 0 : 1;
}
