/**
 * @file
 * Figure 3 / Section 2.3: inter-node multicast bandwidth savings and the
 * load balance obtained by alternating between trees built with different
 * dimension orders.
 *
 * The paper's example: broadcasting one particle's position to the
 * destination set in a plane of the torus saves 12 torus hops versus
 * unicasts, and alternating between two tree orientations balances the
 * load on the most heavily utilized channels. With multiple endpoints per
 * node the unicast cost multiplies while the multicast cost does not.
 *
 * This bench computes tree/unicast hop counts analytically and then
 * *measures* torus-link flits in the cycle simulator for both transports.
 */
#include <algorithm>
#include <cstdio>
#include <map>

#include "common.hpp"
#include "core/machine.hpp"
#include "routing/multicast.hpp"

using namespace anton2;

namespace {

/** The Figure 3 destination set: the 3x3 plane around the source in Y/Z. */
std::vector<McastDest>
planeDests(const TorusGeom &geom, NodeId src, int eps_per_node)
{
    std::vector<McastDest> dests;
    for (int dy : { -1, 0, 1 }) {
        for (int dz : { -1, 0, 1 }) {
            Coords c = geom.coords(src);
            const int ky = geom.radix(1), kz = geom.radix(2);
            c[1] = (c[1] + dy + ky) % ky;
            c[2] = (c[2] + dz + kz) % kz;
            const NodeId n = geom.id(c);
            if (n == src)
                continue;
            for (int e = 0; e < eps_per_node; ++e)
                dests.push_back({ n, e });
        }
    }
    return dests;
}

/** Max per-channel use across tree edges (channel = (node, dim, dir)). */
int
maxChannelUse(const std::vector<const McastTree *> &trees)
{
    std::map<std::tuple<NodeId, int, int>, int> use;
    for (const auto *t : trees) {
        for (const auto &[node, entry] : t->nodes) {
            for (const auto &hop : entry.forward)
                ++use[{ node, hop.dim, dirIndex(hop.dir) }];
        }
    }
    int mx = 0;
    for (const auto &[k, v] : use)
        mx = std::max(mx, v);
    return mx;
}

} // namespace

int
main(int argc, char **argv)
{
    long k_flag = 8, threads = 1;
    bench::ReportOptions report;
    bench::HostProfileOptions host_profile;
    bench::OptionRegistry reg(
        "Figure 3: multicast tree vs. unicast torus hops, plus measured "
        "flit savings in the simulator");
    reg.add("--k", "N", "torus radix per dimension (default 8)", &k_flag);
    reg.add("--threads", "N",
            "engine worker threads for the measured section (results are "
            "bit-identical at any count)",
            &threads);
    host_profile.registerInto(reg);
    report.registerInto(reg);
    if (!reg.parse(argc, argv))
        return 1;
    if (threads < 1) {
        std::fprintf(stderr, "error: --threads must be >= 1\n");
        return 1;
    }
    if (!host_profile.validate() || !report.validate())
        return 1;
    const int k = static_cast<int>(k_flag);
    const TorusGeom geom(k, k, k);
    const NodeId src = geom.id({ k / 2, k / 2, k / 2 });

    bench::printHeader("Figure 3: multicast vs. unicast torus hops");

    Rng rng(3);
    std::printf("%-22s %12s %12s %10s\n", "endpoints/node", "unicast hops",
                "tree hops", "saved");
    bench::printRule(60);
    for (int eps : { 1, 2, 4 }) {
        const auto dests = planeDests(geom, src, eps);
        const auto tree =
            buildMcastTree(geom, src, dests, DimOrder{ 1, 2, 0 }, 0, rng);
        const int uni = unicastTorusHops(geom, src, dests);
        std::printf("%-22d %12d %12d %10d\n", eps, uni, tree.torusHops(),
                    uni - tree.torusHops());
    }
    bench::printRule(60);
    std::printf("Paper's example (2D plane, multiple endpoints/node): "
                "saves 12 torus hops\nat one endpoint per node; savings "
                "multiply with endpoints per node.\n");

    // --- alternating tree orientations (load balance) -----------------
    const auto dests = planeDests(geom, src, 1);
    const auto tree_a =
        buildMcastTree(geom, src, dests, DimOrder{ 1, 2, 0 }, 0, rng);
    const auto tree_b =
        buildMcastTree(geom, src, dests, DimOrder{ 2, 1, 0 }, 0, rng);
    std::printf("\nAlternating tree orientations (2 packets):\n");
    std::printf("  same tree twice:   max channel load %d\n",
                maxChannelUse({ &tree_a, &tree_a }));
    std::printf("  alternating trees: max channel load %d\n",
                maxChannelUse({ &tree_a, &tree_b }));

    // --- measured in the simulator ------------------------------------
    HostProfiler prof;
    prof.beginPhase("build");
    MachineConfig cfg;
    cfg.radix = { 4, 4, 4 };
    cfg.chip.endpoints_per_node = 4;
    cfg.use_packaging = false;
    cfg.seed = 9;
    cfg.threads = static_cast<int>(threads);
    Machine m(cfg);
    if (report.enabled() || host_profile.enabled) {
        Instrumentation inst;
        report.addTo(inst);
        host_profile.addTo(inst);
        m.attachInstrumentation(inst);
    }
    prof.beginPhase("run");
    const NodeId msrc = m.geom().id({ 2, 2, 2 });
    const auto mdests = planeDests(m.geom(), msrc, 1);

    auto torusFlits = [&] {
        std::uint64_t total = 0;
        for (NodeId n = 0; n < m.geom().numNodes(); ++n) {
            for (int ca = 0; ca < m.layout().numChannelAdapters(); ++ca)
                total += m.chip(n).channelAdapter(ca).flitsSent();
        }
        return total;
    };

    Rng trng(4);
    const auto tree =
        buildMcastTree(m.geom(), msrc, mdests, DimOrder{ 1, 2, 0 }, 0,
                       trng);
    const auto group = m.installTree(tree);
    const auto before = torusFlits();
    m.sendMulticast({ msrc, 0 }, group);
    m.run(RunSpec::untilDelivered(mdests.size(), 100000));
    const auto mcast_flits = torusFlits() - before;

    for (const auto &[node, ep] : mdests)
        m.send(m.makeWrite({ msrc, 0 }, { node, ep }));
    m.run(RunSpec::untilDelivered(2 * mdests.size(), 100000));
    const auto unicast_flits = torusFlits() - before - mcast_flits;

    std::printf("\nMeasured in the cycle simulator (4x4x4, one plane):\n");
    std::printf("  multicast torus flits: %llu\n",
                static_cast<unsigned long long>(mcast_flits));
    std::printf("  unicast torus flits:   %llu\n",
                static_cast<unsigned long long>(unicast_flits));
    prof.endPhase();
    host_profile.write(m);
    bench::recordHostMem(prof, m);
    report.write("fig3_multicast",
                 bench::JsonObj().add("k", bench::num(k)).dump(0),
                 report.bodyJson(m),
                 bench::hostJson(prof, m.now(),
                                 m.engine().componentCount()));
    return 0;
}
