/**
 * @file
 * Figure 10: blending tornado and reverse-tornado traffic under four
 * arbiter-weight configurations (Section 4.2).
 *
 * Packets are split between the two patterns with a fraction varying along
 * the horizontal axis; each packet carries its pattern id. Configurations:
 *   None    - round-robin arbitration;
 *   Forward - a single weight set computed from tornado loads;
 *   Reverse - a single weight set computed from reverse-tornado loads;
 *   Both    - two weight sets, one per pattern (the inverse-weighted
 *             arbiter's headline capability).
 *
 * Paper's result: single-weight-set configurations degrade toward
 * round-robin when the blend moves away from their pattern; Both holds
 * ~85% across the entire range.
 *
 * Default: 8x4x4 torus, 8 cores/node, 256 packets per core (the paper used
 * 8x8x8 with 1,024 per core; --kx/--ky/--kz/--batch scale up).
 */
#include <cstdio>
#include <string>

#include "analysis/loads.hpp"
#include "common.hpp"
#include "core/machine.hpp"
#include "traffic/driver.hpp"
#include "traffic/patterns.hpp"

using namespace anton2;

namespace {

enum class WeightMode { None, Forward, Reverse, Both };

double
runBlend(const std::vector<int> &radix, int cores, std::uint64_t batch,
         WeightMode mode, double reverse_fraction, std::uint64_t seed,
         int threads, const bench::ReportOptions &report,
         const bench::HostProfileOptions &host_profile, bool probe,
         std::string *report_body, std::string *host_json)
{
    HostProfiler prof;
    prof.beginPhase("build");
    MachineConfig cfg;
    cfg.radix = radix;
    cfg.chip.endpoints_per_node = 8;
    cfg.chip.arb = mode == WeightMode::None ? ArbPolicy::RoundRobin
                                            : ArbPolicy::InverseWeighted;
    cfg.use_packaging = false;
    cfg.fixed_torus_latency = 20;
    cfg.seed = seed;
    cfg.threads = threads;
    Machine m(cfg);
    // The probe run (last sweep point, Both mode) carries the run-report
    // and self-profiling instrumentation; the rest of the sweep stays
    // uninstrumented.
    if (probe && (report.enabled() || host_profile.enabled)) {
        Instrumentation inst;
        report.addTo(inst);
        host_profile.addTo(inst);
        m.attachInstrumentation(inst);
    }

    const auto eps = firstEndpoints(cores);
    TornadoPattern fwd(m.geom(), false);
    TornadoPattern rev(m.geom(), true);

    // Program weights per the mode. Pattern slot 0 = forward tornado,
    // slot 1 = reverse tornado; packets are labeled accordingly.
    LoadModel lm(m.geom(), m.layout(), cfg.chip, 2);
    Rng lrng(seed + 1);
    switch (mode) {
      case WeightMode::None:
        break;
      case WeightMode::Forward:
        // One weight set used for both labels.
        lm.addPattern(0, fwd, eps, 200, lrng);
        lm.addPattern(1, fwd, eps, 200, lrng);
        lm.applyWeights(m);
        break;
      case WeightMode::Reverse:
        lm.addPattern(0, rev, eps, 200, lrng);
        lm.addPattern(1, rev, eps, 200, lrng);
        lm.applyWeights(m);
        break;
      case WeightMode::Both:
        lm.addPattern(0, fwd, eps, 200, lrng);
        lm.addPattern(1, rev, eps, 200, lrng);
        lm.applyWeights(m);
        break;
    }

    // Normalization: the blended demand's ideal throughput, from a mixed
    // sample stream (blended load = (1-f)*L_fwd + f*L_rev).
    LoadModel norm2(m.geom(), m.layout(), cfg.chip, 1);
    class Mixed : public TrafficPattern
    {
      public:
        Mixed(const TorusGeom &g, double f)
            : TrafficPattern(g), fwd_(g, false), rev_(g, true), f_(f)
        {
        }
        NodeId
        dest(NodeId src, Rng &rng) const override
        {
            return rng.chance(f_) ? rev_.dest(src, rng)
                                  : fwd_.dest(src, rng);
        }
        std::string name() const override { return "mixed"; }

      private:
        TornadoPattern fwd_;
        TornadoPattern rev_;
        double f_;
    } mixed(m.geom(), reverse_fraction);
    Rng nrng2(seed + 3);
    norm2.addPattern(0, mixed, eps, 400, nrng2);
    const double ideal = norm2.idealCoreThroughput(0);

    BatchDriver::Config dcfg;
    dcfg.cores = eps;
    dcfg.batch_size = batch;
    dcfg.pattern = &fwd;
    dcfg.pattern_id = 0;
    dcfg.pattern2 = &rev;
    dcfg.pattern2_id = 1;
    dcfg.blend_fraction2 = reverse_fraction;
    BatchDriver driver(m, dcfg);
    m.engine().add(driver);
    prof.beginPhase("run");
    if (!driver.run(static_cast<Cycle>(batch) * 3000 + 300000))
        std::fprintf(stderr, "WARNING: blend run timed out\n");
    prof.endPhase();
    if (probe) {
        host_profile.write(m);
        if (report.enabled()) {
            *report_body = report.bodyJson(m);
            bench::recordHostMem(prof, m);
            *host_json = bench::hostJson(prof, m.now(),
                                         m.engine().componentCount());
        }
    }
    return driver.throughputPerCore() / ideal;
}

} // namespace

int
main(int argc, char **argv)
{
    long kx = 8, ky = 4, kz = 4;
    long cores = 8, batch_flag = 256, seed_flag = 21, steps_flag = 4;
    long threads = 1;
    bench::ReportOptions report;
    bench::HostProfileOptions host_profile;
    bench::OptionRegistry reg(
        "Figure 10: tornado / reverse-tornado blending under the four "
        "arbiter weight modes");
    reg.add("--kx", "N", "torus X radix (default 8)", &kx);
    reg.add("--ky", "N", "torus Y radix (default 4)", &ky);
    reg.add("--kz", "N", "torus Z radix (default 4)", &kz);
    reg.add("--cores", "N", "participating cores per node (default 8)",
            &cores);
    reg.add("--batch", "N", "packets per core (default 256)", &batch_flag);
    reg.add("--seed", "N", "simulation seed (default 21)", &seed_flag);
    reg.add("--steps", "N", "blend-fraction sweep steps (default 4)",
            &steps_flag);
    reg.add("--threads", "N",
            "engine worker threads (results are bit-identical at any "
            "count)",
            &threads);
    host_profile.registerInto(reg);
    report.registerInto(reg);
    if (!reg.parse(argc, argv))
        return 1;
    if (threads < 1) {
        std::fprintf(stderr, "error: --threads must be >= 1\n");
        return 1;
    }
    if (!host_profile.validate() || !report.validate())
        return 1;
    const std::vector<int> radix{ static_cast<int>(kx),
                                  static_cast<int>(ky),
                                  static_cast<int>(kz) };
    const auto batch = static_cast<std::uint64_t>(batch_flag);
    const auto seed = static_cast<std::uint64_t>(seed_flag);
    const int steps = static_cast<int>(steps_flag);

    bench::printHeader(
        "Figure 10: tornado / reverse-tornado blending (normalized "
        "throughput)");
    std::printf("torus %dx%dx%d, %ld cores/node, %llu packets/core\n",
                radix[0], radix[1], radix[2], cores,
                static_cast<unsigned long long>(batch));
    std::printf("%-22s %8s %8s %8s %8s\n", "fraction reverse", "None",
                "Forward", "Reverse", "Both");
    bench::printRule(60);

    std::string report_body, report_host;
    for (int i = 0; i <= steps; ++i) {
        const double f = static_cast<double>(i) / steps;
        const double none =
            runBlend(radix, static_cast<int>(cores), batch,
                     WeightMode::None, f, seed,
                     static_cast<int>(threads), report, host_profile, false, nullptr,
                     nullptr);
        const double fwd =
            runBlend(radix, static_cast<int>(cores), batch,
                     WeightMode::Forward, f, seed,
                     static_cast<int>(threads), report, host_profile, false, nullptr,
                     nullptr);
        const double rev =
            runBlend(radix, static_cast<int>(cores), batch,
                     WeightMode::Reverse, f, seed,
                     static_cast<int>(threads), report, host_profile, false, nullptr,
                     nullptr);
        const double both =
            runBlend(radix, static_cast<int>(cores), batch,
                     WeightMode::Both, f, seed,
                     static_cast<int>(threads), report, host_profile,
                     i == steps, &report_body, &report_host);
        std::printf("%-22.2f %8.3f %8.3f %8.3f %8.3f\n", f, none, fwd, rev,
                    both);
    }
    bench::printRule(60);
    std::printf(
        "Paper (8x8x8): Both holds ~0.85 across all blends; Forward/"
        "Reverse fall\ntoward round-robin as the blend moves away from "
        "their pattern.\n");
    report.write("fig10_blend",
                 bench::JsonObj()
                     .add("kx", bench::num(radix[0]))
                     .add("ky", bench::num(radix[1]))
                     .add("kz", bench::num(radix[2]))
                     .add("cores", bench::num(cores))
                     .add("batch", bench::num(static_cast<double>(batch)))
                     .add("steps", bench::num(steps))
                     .dump(0),
                 report_body, report_host);
    return 0;
}
