/**
 * @file
 * Figure 11: one-way software-to-software message latency versus inter-node
 * hop count (Section 4.3).
 *
 * Ping-pong methodology: software on core A issues a 16-byte remote write
 * to core B; a counted-write counter at B dispatches a handler, which
 * writes back to A; A's handler completes the ping-pong. One-way latency =
 * half the round trip, averaged over endpoint pairs at each hop distance,
 * and includes the modeled software/handler-dispatch overhead.
 *
 * The paper reports a linear fit of 80.7 ns fixed + 39.1 ns/hop on the
 * 8x8x8 machine, and a minimum inter-node latency of ~99 ns. Per-link wire
 * latencies come from the Figure 2 packaging model, so hops that leave a
 * backplane or rack cost more - exactly the structure behind the paper's
 * per-hop average.
 */
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/machine.hpp"
#include "sim/stats.hpp"

using namespace anton2;

namespace {

/** Software send + handler dispatch overhead per side, in cycles. The
 * paper's Figure 12 attributes ~60% of the 99 ns minimum latency to the
 * endpoints and software. */
constexpr Cycle kSoftwareCycles = 44; // ~29 ns per traversal end

Cycle
pingPong(Machine &m, EndpointAddr a, EndpointAddr b, int rounds)
{
    // The handler chain: delivery at B triggers (after software delay) a
    // write back to A; delivery at A completes one round.
    int completed = 0;
    bool done = false;
    Cycle start = 0, end = 0;

    std::function<void()> send_ping = [&] {
        // Arm both sides' counted-write counters for this round, then
        // issue the ping.
        m.endpoint(b).armCounter(1, 1);
        m.endpoint(a).armCounter(2, 1);
        auto pkt = m.makeWrite(a, b, 0, 1, /*counter=*/1);
        m.send(pkt);
    };

    m.endpoint(b).setHandlerFn([&](std::int32_t, Cycle) {
        // Counted write arrived at B: schedule the pong after the software
        // overhead. (Modeled by injecting with a birth delay: we simply
        // run the engine and inject directly; the overhead is added to the
        // measured time analytically below.)
        auto pkt = m.makeWrite(b, a, 0, 1, /*counter=*/2);
        m.send(pkt);
    });
    m.endpoint(a).setHandlerFn([&](std::int32_t, Cycle now) {
        ++completed;
        if (completed >= rounds) {
            done = true;
            end = now;
        } else {
            send_ping();
        }
    });

    start = m.now();
    send_ping();
    RunSpec spec;
    spec.max_cycles = 4000000;
    spec.stop = [&] { return done; };
    m.run(spec);
    // Detach the handlers (they capture this frame's locals).
    m.endpoint(a).setHandlerFn(nullptr);
    m.endpoint(b).setHandlerFn(nullptr);
    if (!done)
        return 0;

    // Each one-way traversal incurs the software overhead once.
    const Cycle network = (end - start) / static_cast<Cycle>(rounds);
    return network / 2 + kSoftwareCycles;
}

} // namespace

int
main(int argc, char **argv)
{
    long k_flag = 8, pairs_flag = 6, rounds_flag = 4;
    const char *json_path = nullptr;
    bench::RunOptions run;
    bench::OptionRegistry reg(
        "Figure 11: one-way software-to-software message latency vs. "
        "inter-node hop count");
    reg.add("--k", "N", "torus radix per dimension (default 8)", &k_flag);
    reg.add("--pairs", "N", "endpoint pairs sampled per hop count "
                            "(default 6)",
            &pairs_flag);
    reg.add("--rounds", "N", "ping-pong rounds per pair (default 4)",
            &rounds_flag);
    reg.add("--json", "PATH", "write the machine-readable report JSON",
            &json_path);
    run.registerInto(reg);
    if (!reg.parse(argc, argv))
        return 1;
    if (!run.validate() || !bench::validateOutputPaths({ json_path }))
        return 1;
    const int k = static_cast<int>(k_flag);
    const int pairs = static_cast<int>(pairs_flag);
    const int rounds = static_cast<int>(rounds_flag);
    const auto &trace = run.trace;
    const auto &ts = run.ts;
    const auto &audit = run.audit;

    HostProfiler prof;
    prof.beginPhase("build");
    MachineConfig cfg;
    cfg.radix = { k, k, k };
    cfg.chip.endpoints_per_node = 4;
    cfg.chip.arb = ArbPolicy::RoundRobin;
    cfg.use_packaging = true; // Figure 2 trace/cable latencies
    cfg.seed = 31;
    Machine m(cfg);
    run.apply(m, /*metrics=*/json_path != nullptr);
    // The network is quiescent between ping-pongs, so a checkpoint
    // brackets the whole sweep: --checkpoint-in resumes a prior
    // machine's clock/RNG state, --checkpoint-out (below) preserves
    // this one's.
    if (run.ckpt.in != nullptr)
        m.restoreCheckpoint(run.ckpt.in);
    prof.beginPhase("run");

    bench::printHeader(
        "Figure 11: one-way 16 B message latency vs. inter-node hops");
    std::printf("torus %dx%dx%d, packaging-model link latencies\n", k, k,
                k);
    std::printf("%6s %14s %14s\n", "hops", "latency (ns)", "samples");
    bench::printRule(40);

    const int max_hops = 3 * (k / 2);
    std::vector<double> xs, ys;
    std::vector<std::string> rows;
    Rng rng(5);
    for (int h = 1; h <= max_hops; ++h) {
        ScalarStat lat;
        int found = 0;
        for (int attempt = 0; attempt < 4000 && found < pairs; ++attempt) {
            const auto a = static_cast<NodeId>(
                rng.below(m.geom().numNodes()));
            const auto b = static_cast<NodeId>(
                rng.below(m.geom().numNodes()));
            if (a == b || m.geom().hopDistance(a, b) != h)
                continue;
            ++found;
            const Cycle c = pingPong(m, { a, 0 }, { b, 1 }, rounds);
            if (c > 0)
                lat.add(cyclesToNs(c));
        }
        if (lat.count() == 0)
            continue;
        std::printf("%6d %14.1f %14llu\n", h, lat.mean(),
                    static_cast<unsigned long long>(lat.count()));
        rows.push_back(
            bench::JsonObj()
                .add("hops", bench::num(h))
                .add("latency_ns", bench::num(lat.mean()))
                .add("min_ns", bench::num(lat.min()))
                .add("max_ns", bench::num(lat.max()))
                .add("samples",
                     bench::num(static_cast<double>(lat.count())))
                .dump(0));
        xs.push_back(h);
        ys.push_back(lat.mean());
    }
    bench::printRule(40);
    prof.endPhase();
    if (run.ckpt.out != nullptr)
        m.saveCheckpoint(run.ckpt.out);
    run.flows.write(m);
    ts.write(m);
    audit.write(m);
    run.host_profile.write(m);

    const auto fit = LinearFit::fit(xs, ys);
    std::printf("\nLinear fit: %.1f ns fixed + %.1f ns/hop (r^2 = %.4f)\n",
                fit.intercept, fit.slope, fit.r2);
    std::printf("Paper:      80.7 ns fixed + 39.1 ns/hop; minimum ~99 ns\n");
    if (!ys.empty())
        std::printf("Minimum measured latency: %.1f ns\n", ys.front());

    const auto config = bench::JsonObj()
                            .add("k", bench::num(k))
                            .add("pairs", bench::num(pairs))
                            .add("rounds", bench::num(rounds))
                            .dump(0);
    bench::recordHostMem(prof, m);
    run.report.write("fig11_latency", config, run.report.bodyJson(m),
                     bench::hostJson(prof, m.now(),
                                     m.engine().componentCount()));
    if (json_path != nullptr) {
        const auto fit_obj = bench::JsonObj()
                                 .add("intercept_ns",
                                      bench::num(fit.intercept))
                                 .add("slope_ns_per_hop",
                                      bench::num(fit.slope))
                                 .add("r2", bench::num(fit.r2))
                                 .dump(0);
        bench::writeFile(json_path,
                         bench::JsonObj()
                             .add("bench", bench::str("fig11_latency"))
                             .add("config", config)
                             .add("rows", bench::arr(rows))
                             .add("fit", fit_obj)
                             .add("metrics", m.metricsJson())
                             .add("timeseries", ts.jsonSection(m))
                             .add("audit", audit.jsonSection(m))
                             .add("host",
                                  bench::hostJson(
                                      prof, m.now(),
                                      m.engine().componentCount()))
                             .dump()
                             + "\n");
        std::printf("JSON report written to %s\n", json_path);
    }
    if (trace.enabled()) {
        trace.write(m);
        if (trace.chrome != nullptr)
            std::printf("Chrome trace written to %s\n", trace.chrome);
        if (trace.csv != nullptr)
            std::printf("Flight record written to %s\n", trace.csv);
    }
    return 0;
}
