/**
 * @file
 * Batch experiment runner CLI: fan a queue of config points for another
 * bench across worker processes, optionally warm-starting every point
 * from a steady-state checkpoint, and merge the per-run reports into
 * one deterministic batch artifact.
 *
 *     bench_batch --bench build/bench_fig9_throughput \
 *         --point "--pattern uniform --batch 1" \
 *         --point "--pattern uniform --batch 4" \
 *         --forks 2 --warm-args "--auto-steady" \
 *         --jobs 4 --workdir /tmp/sweep --out sweep.json
 *
 * Every point runs as `<bench> <point args> [...]`; the runner owns the
 * --report and --checkpoint-in/out flags, so point args must not carry
 * them. The artifact strips each report's host section and is emitted
 * in point/fork order: byte-identical at any --jobs value.
 */
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "sim/batch.hpp"

using namespace anton2;
using namespace anton2::bench;

int
main(int argc, char **argv)
{
    const char *bench_path = nullptr;
    std::vector<std::string> points;
    long jobs = 1;
    long forks = 0;
    const char *warm_args = nullptr;
    const char *workdir = ".";
    const char *out = nullptr;

    OptionRegistry reg(
        "Batch runner: fan config points of another bench across worker "
        "processes, with optional warm-start forking from a steady-state "
        "checkpoint, merging the run reports into one sorted artifact.");
    reg.add("--bench", "PATH", "the bench executable to run every point "
                               "through (required)",
            &bench_path);
    reg.add("--point", "ARGS",
            "one config point: the bench's args as a single string "
            "(repeatable; no --report/--checkpoint flags)",
            &points);
    reg.add("--jobs", "N", "max concurrent worker processes (default 1)",
            &jobs);
    reg.add("--forks", "N",
            "measurement forks per point from its steady-state "
            "checkpoint (default 0 = cold runs)",
            &forks);
    reg.add("--warm-args", "ARGS",
            "extra args for the converge run only (default "
            "\"--auto-steady\" when --forks > 0)",
            &warm_args);
    reg.add("--workdir", "DIR",
            "where checkpoints, reports, and logs land (default .)",
            &workdir);
    reg.add("--out", "PATH", "write the merged batch artifact JSON here",
            &out);
    if (!reg.parse(argc, argv))
        return 1;

    if (bench_path == nullptr) {
        std::fprintf(stderr, "error: --bench is required\n");
        return 1;
    }
    if (points.empty()) {
        std::fprintf(stderr, "error: at least one --point is required\n");
        return 1;
    }
    if (jobs < 1 || forks < 0) {
        std::fprintf(stderr,
                     "error: --jobs must be >= 1 and --forks >= 0\n");
        return 1;
    }
    if (!validateOutputPaths({ out }))
        return 1;

    BatchConfig cfg;
    cfg.bench = bench_path;
    for (const std::string &p : points)
        cfg.points.push_back(splitArgs(p));
    cfg.jobs = static_cast<int>(jobs);
    cfg.forks = static_cast<int>(forks);
    cfg.warm_args = splitArgs(
        warm_args != nullptr ? warm_args
        : forks > 0          ? "--auto-steady"
                             : "");
    cfg.workdir = workdir;
    if (out != nullptr)
        cfg.out = out;

    printHeader("Batch run");
    std::printf("bench: %s\n", bench_path);
    std::printf("points: %zu   forks/point: %ld   jobs: %ld\n",
                cfg.points.size(), forks, jobs);

    BatchResult res;
    try {
        res = runBatch(cfg);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    std::printf("runs: %zu   failures: %d\n",
                cfg.points.size()
                    * (1 + static_cast<std::size_t>(cfg.forks)),
                res.failures);
    if (out != nullptr)
        std::printf("Batch artifact written to %s\n", out);
    return res.ok() ? 0 : 1;
}
