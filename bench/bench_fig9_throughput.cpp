/**
 * @file
 * Figure 9: throughput of 2-hop-neighbor and uniform random traffic versus
 * batch size, with round-robin and inverse-weighted arbitration.
 *
 * Methodology (Section 4.1): every participating core sends a batch of
 * packets; throughput = batch size / time-to-last-delivery, normalized so
 * 1.0 means full utilization of the bottleneck torus channels (computed by
 * the analytic load model). A single set of arbiter weights, derived from
 * the uniform pattern's channel loads, is used for all traffic patterns -
 * exactly as in the paper.
 *
 * Paper's result: beyond saturation, round-robin throughput collapses
 * (uniform below 60% of ideal); inverse-weighted arbitration saturates
 * near 90% and stays flat as the batch size grows.
 *
 * Defaults: 8x4x4 torus, 8 cores/node - the smallest configuration whose
 * routing chains are deep enough for round-robin unfairness to compound
 * visibly (the paper used 8x8x8 with 16 cores; use --kx/--ky/--kz/--cores
 * and --maxbatch to scale up to it).
 */
#include <cstdio>

#include "analysis/loads.hpp"
#include "common.hpp"
#include "core/machine.hpp"
#include "traffic/driver.hpp"
#include "traffic/patterns.hpp"

using namespace anton2;

namespace {

struct SweepPoint
{
    double normalized;
    Cycle cycles;
    std::string metrics_json; ///< full registry snapshot (telemetry runs)
    std::string timeseries_json; ///< windowed section (probe runs)
    std::string host_json;       ///< simulator self-profile (probe runs)
    std::string audit_json;      ///< auditor summary (probe runs)
    std::string report_json;     ///< run-report body (probe runs)
};

SweepPoint
runBatch(const std::vector<int> &radix, int cores, ArbPolicy policy,
         const char *pattern_name, std::uint64_t batch,
         std::uint64_t seed, const bench::RunOptions &run,
         bool with_metrics, bool probe)
{
    HostProfiler prof;
    prof.beginPhase("build");
    MachineConfig cfg;
    cfg.radix = radix;
    cfg.chip.endpoints_per_node = 8;
    cfg.chip.arb = policy;
    cfg.use_packaging = false;
    cfg.fixed_torus_latency = 20;
    cfg.seed = seed;
    Machine m(cfg);
    m.setThreads(static_cast<int>(run.threads));
    m.setLookahead(static_cast<Cycle>(run.lookahead));
    // Probe runs carry the full requested instrumentation; the other
    // sweep points keep only metrics/progress so the sweep stays fast.
    Instrumentation inst;
    inst.metrics = with_metrics;
    if (probe) {
        run.trace.addTo(inst);
        run.flows.addTo(inst);
        run.ts.addTo(inst);
        run.audit.addTo(inst, m.geom());
        run.host_profile.addTo(inst);
        run.report.addTo(inst);
    } else if (run.ts.progress) {
        inst.progress = ProgressMeter::Config{};
    }
    m.attachInstrumentation(inst);

    const auto core_eps = firstEndpoints(cores);

    UniformPattern uniform(m.geom());
    NHopNeighborPattern twohop(m.geom(), 2);
    const TrafficPattern *pat =
        std::string(pattern_name) == "uniform"
            ? static_cast<const TrafficPattern *>(&uniform)
            : &twohop;

    // Weights from the uniform pattern's loads (one set for all patterns).
    LoadModel lm(m.geom(), m.layout(), cfg.chip, 1);
    Rng lrng(seed + 1);
    lm.addPattern(0, uniform, core_eps, 200, lrng);
    if (policy == ArbPolicy::InverseWeighted)
        lm.applyWeights(m);

    // Normalization against the *measured* pattern's torus bottleneck.
    LoadModel norm(m.geom(), m.layout(), cfg.chip, 1);
    Rng nrng(seed + 2);
    norm.addPattern(0, *pat, core_eps, 200, nrng);
    const double ideal = norm.idealCoreThroughput(0);

    BatchDriver::Config dcfg;
    dcfg.cores = core_eps;
    dcfg.batch_size = batch;
    dcfg.pattern = pat;
    dcfg.pattern_id = 0;
    BatchDriver driver(m, dcfg);
    m.engine().add(driver);

    const Cycle max_cycles =
        static_cast<Cycle>(batch) * 2000 + 200000;
    prof.beginPhase("run");
    // The last probe run (uniform, largest batch) is the one whose
    // report ships, so it alone gets the warm-start checkpoint I/O:
    // --checkpoint-out writes its steady-state image, --checkpoint-in
    // restores into it. The 2-hop probe would otherwise overwrite the
    // image / restore another pattern's traffic.
    RunSpec spec = RunSpec::untilDelivered(driver.deliveredTarget(),
                                           max_cycles);
    if (probe && std::string(pattern_name) == "uniform")
        run.ckpt.addTo(spec);
    if (m.run(spec).reason != StopReason::Delivered)
        std::fprintf(stderr, "WARNING: batch timed out\n");
    prof.endPhase();

    if (probe) {
        run.trace.write(m);
        run.flows.write(m);
    }
    run.ts.write(m);
    SweepPoint res;
    res.normalized = driver.throughputPerCore() / ideal;
    res.cycles = driver.completionTime();
    if (with_metrics)
        res.metrics_json = m.metricsJson();
    if (probe) {
        res.timeseries_json = run.ts.jsonSection(m);
        run.audit.write(m);
        run.host_profile.write(m);
        res.audit_json = run.audit.jsonSection(m);
        res.report_json = run.report.bodyJson(m);
    }
    bench::recordHostMem(prof, m);
    res.host_json =
        bench::hostJson(prof, m.now(), m.engine().componentCount());
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    long kx = 8, ky = 4, kz = 4;
    long cores = 8, maxbatch = 512, seed = 12;
    const char *json_path = nullptr;
    bench::RunOptions run;
    bench::OptionRegistry reg(
        "Figure 9: batch throughput vs. batch size, round-robin vs. "
        "inverse-weighted arbitration");
    reg.add("--kx", "N", "torus X radix (default 8)", &kx);
    reg.add("--ky", "N", "torus Y radix (default 4)", &ky);
    reg.add("--kz", "N", "torus Z radix (default 4)", &kz);
    reg.add("--cores", "N", "participating cores per node (default 8)",
            &cores);
    reg.add("--maxbatch", "N", "largest batch size swept (default 512)",
            &maxbatch);
    reg.add("--seed", "N", "simulation seed (default 12)", &seed);
    reg.add("--json", "PATH", "write the machine-readable report JSON",
            &json_path);
    run.registerInto(reg);
    if (!reg.parse(argc, argv))
        return 1;
    if (!run.validate() || !bench::validateOutputPaths({ json_path }))
        return 1;
    const std::vector<int> radix{ static_cast<int>(kx),
                                  static_cast<int>(ky),
                                  static_cast<int>(kz) };
    const auto max_batch = static_cast<std::uint64_t>(maxbatch);

    bench::printHeader(
        "Figure 9: batch throughput vs. batch size "
        "(normalized; 1.0 = torus channels fully utilized)");
    std::printf("torus %dx%dx%d, %ld cores/node\n", radix[0], radix[1],
                radix[2], cores);
    std::printf("%-18s %10s %14s %16s\n", "pattern", "batch",
                "round-robin", "inverse-weighted");
    bench::printRule();

    std::vector<std::string> rows;
    std::string last_metrics;
    std::string last_timeseries;
    std::string last_host;
    std::string last_audit;
    std::string last_report;
    for (const char *pattern : { "2-hop", "uniform" }) {
        for (std::uint64_t batch = 16; batch <= max_batch; batch *= 4) {
            // The telemetry snapshot (and the event trace / time series,
            // when enabled) comes from the largest batch of each sweep;
            // the last pattern's probe run wins the output files.
            const bool probe =
                (json_path != nullptr || run.trace.enabled()
                 || run.flows.enabled() || run.ts.enabled()
                 || run.audit.enabled() || run.host_profile.enabled
                 || run.report.enabled() || run.ckpt.enabled())
                && batch * 4 > max_batch;
            const auto rr = runBatch(radix, static_cast<int>(cores),
                                     ArbPolicy::RoundRobin, pattern, batch,
                                     static_cast<std::uint64_t>(seed), run,
                                     false, false);
            auto iw = runBatch(radix, static_cast<int>(cores),
                               ArbPolicy::InverseWeighted, pattern, batch,
                               static_cast<std::uint64_t>(seed), run,
                               probe && json_path != nullptr, probe);
            std::printf("%-18s %10llu %14.3f %16.3f\n", pattern,
                        static_cast<unsigned long long>(batch),
                        rr.normalized, iw.normalized);
            rows.push_back(bench::JsonObj()
                               .add("pattern", bench::str(pattern))
                               .add("batch", bench::num(
                                                 static_cast<double>(batch)))
                               .add("round_robin", bench::num(rr.normalized))
                               .add("inverse_weighted",
                                    bench::num(iw.normalized))
                               .dump(0));
            if (probe) {
                last_metrics = std::move(iw.metrics_json);
                last_timeseries = std::move(iw.timeseries_json);
                last_audit = std::move(iw.audit_json);
                last_report = std::move(iw.report_json);
            }
            last_host = std::move(iw.host_json);
        }
        bench::printRule();
    }

    std::printf(
        "Paper (8x8x8, 16 cores): round-robin uniform falls below 0.6 "
        "beyond\nsaturation; inverse-weighted saturates near 0.9 and "
        "stays flat.\n");

    // The run report's config carries only experiment parameters - not
    // the thread count or lookahead window, which are host-execution
    // details that must not break the report's cross-thread
    // byte-identity. The --json report below keeps them.
    const auto det_config =
        bench::JsonObj()
            .add("kx", bench::num(radix[0]))
            .add("ky", bench::num(radix[1]))
            .add("kz", bench::num(radix[2]))
            .add("cores", bench::num(cores))
            .add("maxbatch", bench::num(static_cast<double>(max_batch)))
            .add("seed", bench::num(static_cast<double>(seed)))
            .dump(0);
    run.report.write("fig9_throughput", det_config, last_report,
                     last_host);
    if (json_path != nullptr) {
        const auto config =
            bench::JsonObj()
                .add("kx", bench::num(radix[0]))
                .add("ky", bench::num(radix[1]))
                .add("kz", bench::num(radix[2]))
                .add("cores", bench::num(cores))
                .add("maxbatch", bench::num(static_cast<double>(max_batch)))
                .add("seed", bench::num(static_cast<double>(seed)))
                .add("threads",
                     bench::num(static_cast<double>(run.threads)))
                .dump(0);
        bench::writeFile(
            json_path,
            bench::JsonObj()
                .add("bench", bench::str("fig9_throughput"))
                .add("config", config)
                .add("rows", bench::arr(rows))
                .add("metrics", last_metrics.empty() ? "null"
                                                     : last_metrics)
                .add("timeseries", last_timeseries.empty()
                                       ? "null"
                                       : last_timeseries)
                .add("audit",
                     last_audit.empty() ? "null" : last_audit)
                .add("host",
                     last_host.empty() ? "null" : last_host)
                .dump()
                + "\n");
        std::printf("JSON report written to %s\n", json_path);
    }
    if (run.trace.chrome != nullptr)
        std::printf("Chrome trace written to %s\n", run.trace.chrome);
    if (run.trace.csv != nullptr)
        std::printf("Flight record written to %s\n", run.trace.csv);
    return 0;
}
