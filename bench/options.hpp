/**
 * @file
 * Declarative command-line option registry for the experiment harnesses.
 *
 * Every bench declares its flags once - name, value placeholder, help
 * text, destination - and gets parsing, `--help` generation, and
 * unknown-flag diagnostics for free. This replaces the per-bench
 * copy-pasted `Args::flag(...)` scans: a flag that is not registered is
 * now an error instead of being silently ignored.
 *
 * Usage:
 *     long k = 8;
 *     const char *json = nullptr;
 *     bench::OptionRegistry reg("Figure N: what this bench reproduces");
 *     reg.add("--k", "N", "torus radix per dimension", &k);
 *     reg.add("--json", "PATH", "write the report JSON here", &json);
 *     if (!reg.parse(argc, argv))
 *         return 1;
 *
 * `--help`/`-h` prints the generated usage text and exits successfully.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace anton2::bench {

class OptionRegistry
{
  public:
    /** @param summary one-line description printed at the top of --help */
    explicit OptionRegistry(std::string summary)
        : summary_(std::move(summary))
    {
    }

    /** Integer-valued option: `--name <VALUE>`. */
    void
    add(const char *name, const char *value_name, const char *help,
        long *out)
    {
        opts_.push_back({ name, value_name, help, Kind::Long, out });
    }

    /** Real-valued option: `--name <VALUE>`. */
    void
    add(const char *name, const char *value_name, const char *help,
        double *out)
    {
        opts_.push_back({ name, value_name, help, Kind::Double, out });
    }

    /** String-valued option (stores a pointer into argv). */
    void
    add(const char *name, const char *value_name, const char *help,
        const char **out)
    {
        opts_.push_back({ name, value_name, help, Kind::String, out });
    }

    /** Valueless presence flag: `--name` sets *out to true. */
    void
    add(const char *name, const char *help, bool *out)
    {
        opts_.push_back({ name, nullptr, help, Kind::Flag, out });
    }

    /** Repeatable string option: every `--name <VALUE>` appends to
     * *out, in command-line order. */
    void
    add(const char *name, const char *value_name, const char *help,
        std::vector<std::string> *out)
    {
        opts_.push_back({ name, value_name, help, Kind::StringList, out });
    }

    /**
     * Presence flag with an optional attached value: `--name` sets
     * *present; `--name=VALUE` additionally stores the value (pointing
     * into argv). The value must be attached with `=` - a following
     * bare argument is not consumed, so `--name PATH` leaves *out
     * null and treats PATH as the next argument.
     */
    void
    addOptional(const char *name, const char *value_name,
                const char *help, bool *present, const char **out)
    {
        opts_.push_back(
            { name, value_name, help, Kind::OptionalString, present,
              out });
    }

    /** Accept one optional positional argument (stores argv pointer). */
    void
    addPositional(const char *value_name, const char *help,
                  const char **out)
    {
        positional_ = { "", value_name, help, Kind::String, out };
        has_positional_ = true;
    }

    /**
     * Parse argv against the registered options. Prints the generated
     * usage text and exits 0 on `--help`/`-h`; prints a diagnostic and
     * returns false on an unknown flag, a missing value, or an
     * unparseable number.
     */
    bool
    parse(int argc, char **argv)
    {
        const char *prog = argc > 0 ? argv[0] : "bench";
        bool got_positional = false;
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--help") == 0
                || std::strcmp(arg, "-h") == 0) {
                printHelp(prog);
                std::exit(0);
            }
            // `--name=value` attaches the value to the flag itself;
            // every kind accepts it, and it is the only way to give an
            // OptionalString flag its value.
            const char *eq = std::strncmp(arg, "--", 2) == 0
                                 ? std::strchr(arg, '=')
                                 : nullptr;
            std::string name_buf;
            const char *lookup = arg;
            if (eq != nullptr) {
                name_buf.assign(arg, eq);
                lookup = name_buf.c_str();
            }
            const Opt *opt = find(lookup);
            if (opt == nullptr) {
                if (has_positional_ && !got_positional
                    && std::strncmp(arg, "--", 2) != 0) {
                    *static_cast<const char **>(positional_.out) = arg;
                    got_positional = true;
                    continue;
                }
                std::fprintf(stderr,
                             "error: unknown option '%s' (try --help)\n",
                             lookup);
                return false;
            }
            if (opt->kind == Kind::OptionalString) {
                *static_cast<bool *>(opt->out) = true;
                if (eq != nullptr)
                    *static_cast<const char **>(opt->out2) = eq + 1;
                continue;
            }
            if (opt->kind == Kind::Flag) {
                if (eq != nullptr) {
                    std::fprintf(stderr,
                                 "error: %s does not take a value\n",
                                 lookup);
                    return false;
                }
                *static_cast<bool *>(opt->out) = true;
                continue;
            }
            const char *val = nullptr;
            if (eq != nullptr) {
                val = eq + 1;
            } else {
                if (i + 1 >= argc) {
                    std::fprintf(stderr, "error: %s requires a value\n",
                                 opt->name);
                    return false;
                }
                val = argv[++i];
            }
            if (!store(*opt, val))
                return false;
        }
        return true;
    }

    void
    printHelp(const char *prog) const
    {
        std::string usage = std::string("usage: ") + prog + " [options]";
        if (has_positional_) {
            usage += " [";
            usage += positional_.value_name;
            usage += "]";
        }
        std::printf("%s\n\n%s\n\noptions:\n", usage.c_str(),
                    summary_.c_str());
        for (const Opt &o : opts_)
            printRow(o);
        printRow({ "--help", nullptr, "print this message and exit",
                   Kind::Flag, nullptr });
        if (has_positional_) {
            std::printf("\npositional:\n");
            printRow(positional_);
        }
    }

  private:
    enum class Kind
    {
        Long,
        Double,
        String,
        StringList, ///< repeatable; appends to a vector<string>
        Flag,
        OptionalString, ///< presence flag with optional `=VALUE`
    };

    struct Opt
    {
        const char *name;       ///< "--flag" (empty for the positional)
        const char *value_name; ///< placeholder in --help, null for flags
        const char *help;
        Kind kind;
        void *out;
        void *out2 = nullptr;   ///< OptionalString: the value slot
    };

    const Opt *
    find(const char *arg) const
    {
        for (const Opt &o : opts_) {
            if (std::strcmp(o.name, arg) == 0)
                return &o;
        }
        return nullptr;
    }

    bool
    store(const Opt &opt, const char *val) const
    {
        char *end = nullptr;
        switch (opt.kind) {
          case Kind::Long:
            *static_cast<long *>(opt.out) = std::strtol(val, &end, 10);
            break;
          case Kind::Double:
            *static_cast<double *>(opt.out) = std::strtod(val, &end);
            break;
          case Kind::String:
            *static_cast<const char **>(opt.out) = val;
            return true;
          case Kind::StringList:
            static_cast<std::vector<std::string> *>(opt.out)
                ->push_back(val);
            return true;
          case Kind::Flag:
          case Kind::OptionalString:
            return true;
        }
        if (end == val || *end != '\0') {
            std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                         opt.name, val);
            return false;
        }
        return true;
    }

    static void
    printRow(const Opt &o)
    {
        std::string left = "  ";
        left += o.name[0] != '\0' ? o.name : "";
        if (o.value_name != nullptr) {
            if (o.kind == Kind::OptionalString) {
                left += "[=";
                left += o.value_name;
                left += "]";
            } else {
                if (!left.empty() && left != "  ")
                    left += " ";
                left += "<";
                left += o.value_name;
                left += ">";
            }
        }
        std::printf("%-26s %s\n", left.c_str(), o.help);
    }

    std::string summary_;
    std::vector<Opt> opts_;
    Opt positional_{ "", nullptr, nullptr, Kind::String, nullptr };
    bool has_positional_ = false;
};

} // namespace anton2::bench
