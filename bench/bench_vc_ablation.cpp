/**
 * @file
 * Section 2.5 ablation: the VC-promotion scheme (n+1 VCs per traffic
 * class) versus the prior-art baseline (2n VCs), on two axes:
 *
 *  1. Correctness - both schemes' VC dependency graphs are acyclic (the
 *     negative control without datelines is not), verified by explicit
 *     graph construction at the torus level and at the exact chip level.
 *
 *  2. Cost - queue area scales with the VC count; Table 2 makes queues
 *     ~47% of the network area, so cutting VCs from 12 to 8 per router /
 *     channel adapter shrinks the network substantially.
 */
#include <cstdio>

#include "analysis/deadlock.hpp"
#include "area/area_model.hpp"
#include "common.hpp"

using namespace anton2;

int
main(int argc, char **argv)
{
    long k_flag = 4;
    bench::OptionRegistry reg(
        "Section 2.5 ablation: VC promotion (n+1 VCs) vs. baseline-2n, "
        "correctness and area cost");
    reg.add("--k", "N", "torus radix per dimension (default 4)", &k_flag);
    if (!reg.parse(argc, argv))
        return 1;
    const int k = static_cast<int>(k_flag);

    bench::printHeader("Section 2.5: VC-promotion ablation");

    // --- correctness -------------------------------------------------
    std::printf("\nDeadlock checks (%dx%dx%d torus, all dimension orders, "
                "all tie-breaks):\n", k, k, k);
    std::printf("%-14s %8s %12s %12s %10s\n", "policy", "VCs/class",
                "resources", "edges", "acyclic");
    bench::printRule(62);

    const TorusGeom geom(k, k, k);
    const ChipLayout layout(23, 3);
    for (VcPolicy policy : { VcPolicy::Anton2, VcPolicy::Baseline2n,
                             VcPolicy::NoDateline }) {
        const auto report = checkTorusLevel(geom, policy);
        std::printf("%-14s %8d %12zu %12zu %10s\n", vcPolicyName(policy),
                    numUnifiedVcs(policy, 3), report.resources,
                    report.edges, report.acyclic ? "yes" : "NO (cycle)");
    }
    bench::printRule(62);

    std::printf("\nChip-level (exact on-chip channels, sampled endpoints), "
                "4x4x4:\n");
    const TorusGeom small(4, 4, 4);
    for (VcPolicy policy : { VcPolicy::Anton2, VcPolicy::Baseline2n }) {
        const auto report = checkChipLevel(small, layout, policy,
                                           anton2DirOrder(), { 0, 22 });
        std::printf("  %-14s %9zu resources %9zu edges  acyclic: %s\n",
                    vcPolicyName(policy), report.resources, report.edges,
                    report.acyclic ? "yes" : "NO");
    }

    // --- cost ---------------------------------------------------------
    const AreaModel model;
    const auto anton2 = model.evaluate(NetworkSpec::forPolicy(
        VcPolicy::Anton2));
    const auto baseline = model.evaluate(NetworkSpec::forPolicy(
        VcPolicy::Baseline2n));

    std::printf("\nArea impact (calibrated model, %% of die):\n");
    std::printf("%-22s %10s %12s\n", "", "anton2", "baseline-2n");
    bench::printRule(48);
    std::printf("%-22s %10d %12d\n", "VCs per class", 4, 6);
    std::printf("%-22s %10.2f %12.2f\n", "queue area",
                anton2.categoryTotal(AreaCategory::Queues),
                baseline.categoryTotal(AreaCategory::Queues));
    std::printf("%-22s %10.2f %12.2f\n", "network total",
                anton2.networkTotal(), baseline.networkTotal());
    bench::printRule(48);
    std::printf("Network area saved by VC promotion: %.1f%%\n",
                (1.0 - anton2.networkTotal() / baseline.networkTotal())
                    * 100.0);
    std::printf("(The abstract's claim: one-third fewer VCs; queues are "
                "the largest\n area category, Table 2.)\n");
    return 0;
}
