/**
 * @file
 * Table 2: network area by category and component (Section 4.4), from the
 * calibrated analytic area model, plus the arbiter-area split of
 * Section 4.4 (~3/4 accumulators + weights, ~1/4 prioritized arbiter).
 */
#include <cstdio>

#include "area/area_model.hpp"
#include "common.hpp"

using namespace anton2;

int
main()
{
    const AreaModel model;
    const auto area = model.evaluate(AreaModel::referenceSpec());
    const double net = area.networkTotal();

    bench::printHeader("Table 2: network area by category (% network area)");
    std::printf("%-16s %8s %10s %9s %8s %8s\n", "Category", "Router",
                "Endpoint", "Channel", "Total", "paper");
    bench::printRule(66);

    const double paper_total[kNumAreaCategories] = { 46.6, 9.6, 8.9, 8.6,
                                                     7.8, 7.3, 5.7, 5.4 };
    // Print in the paper's order (descending total).
    const AreaCategory order[] = {
        AreaCategory::Queues,    AreaCategory::Reduction,
        AreaCategory::Link,      AreaCategory::Config,
        AreaCategory::Debug,     AreaCategory::Misc,
        AreaCategory::Multicast, AreaCategory::Arbiters,
    };
    for (AreaCategory cat : order) {
        const auto ci = static_cast<std::size_t>(cat);
        const double r = area.pct[0][ci] / net * 100;
        const double e = area.pct[1][ci] / net * 100;
        const double c = area.pct[2][ci] / net * 100;
        std::printf("%-16s %8.1f %10.1f %9.1f %8.1f %8.1f\n",
                    areaCategoryName(cat), r, e, c, r + e + c,
                    paper_total[ci]);
    }
    bench::printRule(66);

    std::printf("\nArbiter area split (Section 4.4): ~3/4 accumulator "
                "storage/update, ~1/4\nprioritized arbiter - encoded in "
                "the model's arbiter structural formula.\n");
    return 0;
}
