/**
 * @file
 * Figure 12: decomposition of the minimum inter-node message latency
 * (Section 4.3).
 *
 * The paper breaks the ~99 ns nearest-neighbor, software-to-software
 * latency into endpoint software/synchronization, endpoint adapters (E),
 * routers (R, with the four pipeline stages RC/VA/SA1/SA2), torus-channel
 * adapters (C), SerDes/link, and wire time - noting that the network
 * proper accounts for only ~40% of the total.
 *
 * This bench measures the same single-packet traversal in the simulator
 * (instrumented timestamps at injection and ejection, with the component
 * latencies known from the model's configuration) and prints the
 * decomposition next to the measured end-to-end number.
 */
#include <cstdio>

#include "common.hpp"
#include "core/machine.hpp"

using namespace anton2;

int
main(int argc, char **argv)
{
    long k_flag = 4;
    bench::RunOptions run;
    bench::OptionRegistry reg(
        "Figure 12: minimum inter-node latency decomposition "
        "(single-packet traversal)");
    reg.add("--k", "N", "torus radix per dimension (default 4)", &k_flag);
    run.registerInto(reg);
    if (!reg.parse(argc, argv))
        return 1;
    if (!run.validate())
        return 1;
    const int k = static_cast<int>(k_flag);
    const auto &trace = run.trace;
    const auto &ts = run.ts;
    const auto &audit = run.audit;

    HostProfiler prof;
    prof.beginPhase("build");
    MachineConfig cfg;
    cfg.radix = { k, k, k };
    cfg.chip.endpoints_per_node = 23;
    cfg.use_packaging = true;
    cfg.seed = 33;
    Machine m(cfg);
    // A single-packet traversal makes the smallest useful demo trace:
    // every lifecycle event of Figure 12's E -> R -> C -> link path.
    run.apply(m);
    prof.beginPhase("run");

    // The minimum-latency configuration: source and destination endpoints
    // co-located with the Y-channel routers (endpoint 16 sits on R(0,2)
    // next to the slice-0 Y adapters), a single-dimension +Y route on
    // slice 0. This matches Figure 12's E -> R -> C -> link -> C -> R -> E
    // structure with exactly one router per side.
    const EndpointId ep = [&] {
        for (EndpointId e = 0; e < m.layout().numEndpoints(); ++e) {
            if (m.layout().endpointRouter(e)
                == m.layout().channelRouter(1, Dir::Pos, 0)) {
                return e;
            }
        }
        return EndpointId{ 0 };
    }();
    const NodeId a = m.geom().id({ 0, 0, 0 });
    const NodeId b = m.geom().id({ 0, 1, 0 });

    auto pkt = m.makeWrite({ a, ep }, { b, ep });
    Rng tie(1);
    pkt->route = makeRoute(m.geom(), a, b, DimOrder{ 1, 0, 2 }, 0, tie);
    pkt->vc = VcState(cfg.chip.vc_policy);
    m.chip(a).setExit(*pkt, 1);
    m.send(pkt);
    if (m.run(RunSpec::untilDelivered(1, 100000)).reason
        != StopReason::Delivered) {
        std::fprintf(stderr, "delivery failed\n");
        audit.write(m); // forensic snapshot of the wedge, if requested
        return 1;
    }
    const Cycle network = pkt->eject_time - pkt->inject_time;

    // Model constants (cycles) for the decomposition.
    const Cycle software_src = 44; // send descriptor + doorbell (modeled)
    const Cycle software_dst = 44; // handler dispatch + sync [15]
    const Cycle link = m.config().packaging.linkLatency(m.geom(), a, 1,
                                                        Dir::Pos);

    bench::printHeader(
        "Figure 12: minimum inter-node latency decomposition");
    std::printf("%-44s %10s %10s\n", "component", "cycles", "ns");
    bench::printRule(68);
    auto row = [](const char *name, Cycle c) {
        std::printf("%-44s %10llu %10.1f\n", name,
                    static_cast<unsigned long long>(c), cyclesToNs(c));
    };
    row("software: send + descriptor (modeled)", software_src);
    row("endpoint adapter E inject + wire", 1);
    row("router R: RC / VA / SA1 / SA2", 4);
    row("router switch traversal + wire to C", 1);
    row("channel adapter C egress (register + arb)", 2);
    row("SerDes + wire (Figure 2 packaging)", link);
    row("channel adapter C ingress (route + grant)", 2);
    row("router R: RC / VA / SA1 / SA2 + ST", 5);
    row("endpoint adapter E eject + deliver", 1);
    row("software: handler dispatch (modeled)", software_dst);
    bench::printRule(68);

    const Cycle total = software_src + software_dst + network;
    std::printf("%-44s %10llu %10.1f\n", "measured network traversal",
                static_cast<unsigned long long>(network),
                cyclesToNs(network));
    std::printf("%-44s %10llu %10.1f\n",
                "total software-to-software (min latency)",
                static_cast<unsigned long long>(total), cyclesToNs(total));
    std::printf("\nPaper: ~99 ns minimum; network proper ~40%% of the "
                "total.\nHere: network = %.0f%% of total.\n",
                100.0 * static_cast<double>(network)
                    / static_cast<double>(total));
    if (trace.enabled()) {
        trace.write(m);
        if (trace.chrome != nullptr)
            std::printf("Chrome trace written to %s\n", trace.chrome);
        if (trace.csv != nullptr)
            std::printf("Flight record written to %s\n", trace.csv);
    }
    run.flows.write(m);
    ts.write(m);
    audit.write(m);
    run.host_profile.write(m);
    prof.endPhase();
    bench::recordHostMem(prof, m);
    run.report.write("fig12_breakdown",
                     bench::JsonObj().add("k", bench::num(k)).dump(0),
                     run.report.bodyJson(m),
                     bench::hostJson(prof, m.now(),
                                     m.engine().componentCount()));
    if (m.audit() != nullptr && m.audit()->violationCount() > 0) {
        std::fprintf(stderr, "audit: %llu invariant violations\n",
                     static_cast<unsigned long long>(
                         m.audit()->violationCount()));
    }
    return 0;
}
