/**
 * @file
 * Shared helpers for the experiment harnesses: minimal flag parsing and
 * aligned table printing. Every bench prints the paper's rows/series with
 * defaults that reproduce the paper's setup at simulation-tractable scale;
 * flags let you push to the paper's full 8x8x8 (or larger) machine.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace anton2::bench {

/** Tiny --flag value parser: flag("--kx", 4) etc. */
class Args
{
  public:
    Args(int argc, char **argv) : argc_(argc), argv_(argv) {}

    long
    flag(const char *name, long def) const
    {
        for (int i = 1; i + 1 < argc_; ++i) {
            if (std::strcmp(argv_[i], name) == 0)
                return std::atol(argv_[i + 1]);
        }
        return def;
    }

    bool
    has(const char *name) const
    {
        for (int i = 1; i < argc_; ++i) {
            if (std::strcmp(argv_[i], name) == 0)
                return true;
        }
        return false;
    }

  private:
    int argc_;
    char **argv_;
};

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
printRule(int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace anton2::bench
