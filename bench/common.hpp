/**
 * @file
 * Shared helpers for the experiment harnesses: the declarative option
 * registry (options.hpp), aligned table printing, and the
 * machine-readable `--json <path>` report writer. Every bench prints the
 * paper's rows/series with defaults that reproduce the paper's setup at
 * simulation-tractable scale; flags let you push to the paper's full
 * 8x8x8 (or larger) machine, and `--threads N` runs the sharded engine
 * on N workers with bit-identical results.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "options.hpp"
#include "sim/metrics.hpp"

namespace anton2::bench {

/**
 * Order-preserving JSON report builder for bench output. Values are
 * pre-serialized fragments; use num()/str()/raw() to produce them. The
 * registry's own toJson() output slots in via raw(), so one report can
 * carry both the bench's result rows and the full telemetry snapshot.
 */
class JsonObj
{
  public:
    JsonObj &
    add(const std::string &key, std::string raw_value)
    {
        entries_.emplace_back(key, std::move(raw_value));
        return *this;
    }

    std::string
    dump(int indent = 2, int depth = 0) const
    {
        std::string out = "{\n";
        const std::string pad(
            static_cast<std::size_t>(indent * (depth + 1)), ' ');
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            out += pad + "\"" + jsonEscape(entries_[i].first)
                   + "\": " + entries_[i].second;
            if (i + 1 < entries_.size())
                out += ",";
            out += "\n";
        }
        out += std::string(static_cast<std::size_t>(indent * depth), ' ')
               + "}";
        return out;
    }

  private:
    std::vector<std::pair<std::string, std::string>> entries_;
};

inline std::string
num(double x)
{
    return anton2::jsonNumber(x);
}

inline std::string
str(const std::string &s)
{
    return "\"" + anton2::jsonEscape(s) + "\"";
}

/** Join pre-serialized fragments into a JSON array. */
inline std::string
arr(const std::vector<std::string> &items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0)
            out += ", ";
        out += items[i];
    }
    return out + "]";
}

/** Verify a report path is writable before spending simulation time;
 * prints an error and returns false when it is not. Opens in append
 * mode so an existing report is not clobbered by the probe. */
inline bool
checkWritable(const char *path)
{
    std::FILE *f = std::fopen(path, "a");
    if (f == nullptr) {
        std::fprintf(stderr, "error: cannot open %s for writing\n", path);
        return false;
    }
    std::fclose(f);
    return true;
}

/**
 * Validate every (possibly null) output path up front, reporting *all*
 * unwritable ones before giving up. The single fail-fast gate for
 * --json/--trace/--trace-csv/--heatmap: benches pass their full path
 * set here instead of sprinkling per-flag checks.
 */
inline bool
validateOutputPaths(std::initializer_list<const char *> paths)
{
    bool ok = true;
    for (const char *p : paths) {
        if (p != nullptr)
            ok = checkWritable(p) && ok;
    }
    return ok;
}

inline void
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw std::runtime_error("cannot open " + path + " for writing");
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

/**
 * Shared event-tracing flags for the figure benches:
 *   --trace <path>        write Chrome trace-event JSON (Perfetto/
 *                         chrome://tracing loadable)
 *   --trace-csv <path>    write the per-packet flight-record CSV
 *   --trace-sample <N>    record every Nth packet id (default 1)
 * Paths are validated before any simulation time is spent.
 */
struct TraceOptions
{
    const char *chrome = nullptr;
    const char *csv = nullptr;
    long sample = 1;

    /** Declare the shared tracing flags on @p reg. */
    void
    registerInto(OptionRegistry &reg)
    {
        reg.add("--trace", "PATH",
                "write Chrome trace-event JSON (Perfetto loadable)",
                &chrome);
        reg.add("--trace-csv", "PATH",
                "write the per-packet flight-record CSV", &csv);
        reg.add("--trace-sample", "N",
                "record every Nth packet id (default 1)", &sample);
    }

    bool enabled() const { return chrome != nullptr || csv != nullptr; }

    /** Fail fast on unwritable output paths (false = do not simulate). */
    bool
    validate() const
    {
        if (sample < 1) {
            std::fprintf(stderr, "error: --trace-sample must be >= 1\n");
            return false;
        }
        return validateOutputPaths({ chrome, csv });
    }

    /** Add the requested tracing to an instrumentation bundle. */
    void
    addTo(Instrumentation &inst) const
    {
        if (!enabled())
            return;
        TraceConfig cfg;
        cfg.sample = static_cast<std::uint64_t>(sample);
        inst.trace = cfg;
    }

    /** Export whatever @p m recorded to the requested paths. */
    void
    write(Machine &m) const
    {
        if (chrome != nullptr)
            writeFile(chrome, m.traceChromeJson());
        if (csv != nullptr)
            writeFile(csv, m.traceFlightCsv());
    }
};

/**
 * Shared flow-observability flags for the figure benches:
 *   --flows[=PATH]     attach the flow probe: per-(src, dst, class)
 *                      flow matrix, per-hop span attribution, and the
 *                      congestion-blame digest in the run report. With
 *                      =PATH, also write the flow-matrix CSV.
 *   --flow-sample <N>  retain Chrome-trace span rows for every Nth
 *                      packet id (implies --flows; the rows ride in the
 *                      --trace export)
 * Paths are validated before any simulation time is spent. A probe-less
 * run takes zero additional clock reads, so leaving these off keeps
 * every pre-existing export byte-identical.
 */
struct FlowOptions
{
    bool flows = false;
    const char *csv = nullptr;
    long sample = 0;

    /** Declare the shared flow flags on @p reg. */
    void
    registerInto(OptionRegistry &reg)
    {
        reg.addOptional("--flows", "PATH",
                        "attach the flow probe (flow matrix + congestion "
                        "blame); =PATH also writes the flow-matrix CSV",
                        &flows, &csv);
        reg.add("--flow-sample", "N",
                "retain Chrome-trace flow spans for every Nth packet id "
                "(implies --flows)",
                &sample);
    }

    bool
    enabled() const
    {
        return flows || csv != nullptr || sample > 0;
    }

    /** Resolve implications; fail fast on bad strides / unwritable
     * paths. Call once, after parse(). */
    bool
    validate()
    {
        flows = enabled();
        if (sample < 0) {
            std::fprintf(stderr, "error: --flow-sample must be >= 0\n");
            return false;
        }
        return validateOutputPaths({ csv });
    }

    /** Add the requested flow probe to an instrumentation bundle. */
    void
    addTo(Instrumentation &inst) const
    {
        if (!enabled())
            return;
        FlowProbeConfig cfg;
        cfg.sample = static_cast<std::uint64_t>(sample);
        inst.flows = cfg;
    }

    /** Write the flow-matrix CSV when a path was given. */
    void
    write(Machine &m) const
    {
        if (csv != nullptr && m.flows() != nullptr) {
            writeFile(csv, m.flowMatrixCsv());
            std::printf("Flow matrix CSV written to %s\n", csv);
        }
    }
};

/**
 * Shared windowed time-series flags for the figure benches:
 *   --timeseries          enable the interval sampler
 *   --window <N>          sampling window in cycles (default 1024)
 *   --heatmap <path>      write the per-link congestion heatmap CSV
 *                         (implies --timeseries)
 *   --auto-steady         detect steady state online and reset the
 *                         metrics registry at convergence (implies
 *                         --timeseries)
 *   --warmup <N>          fixed warmup: reset metrics at cycle N
 *   --progress            live stderr progress line (cycle, Mcyc/s)
 * Paths are validated before any simulation time is spent.
 */
struct TimeseriesOptions
{
    bool timeseries = false;
    long window = 1024;
    const char *heatmap = nullptr;
    bool auto_steady = false;
    bool progress = false;
    long warmup = 0;

    /** Declare the shared time-series flags on @p reg. */
    void
    registerInto(OptionRegistry &reg)
    {
        reg.add("--timeseries", "enable the interval sampler",
                &timeseries);
        reg.add("--window", "N", "sampling window in cycles (default 1024)",
                &window);
        reg.add("--heatmap", "PATH",
                "write the per-link congestion heatmap CSV "
                "(implies --timeseries)",
                &heatmap);
        reg.add("--auto-steady",
                "detect steady state online and reset metrics at "
                "convergence (implies --timeseries)",
                &auto_steady);
        reg.add("--warmup", "N", "fixed warmup: reset metrics at cycle N",
                &warmup);
        reg.add("--progress", "live stderr progress line (cycle, Mcyc/s)",
                &progress);
    }

    bool enabled() const { return timeseries; }

    /** Resolve flag implications; fail fast on unwritable paths /
     * nonsense windows. Call once, after parse(). */
    bool
    validate()
    {
        timeseries = timeseries || heatmap != nullptr || auto_steady;
        if (window < 1) {
            std::fprintf(stderr, "error: --window must be >= 1\n");
            return false;
        }
        return validateOutputPaths({ heatmap });
    }

    /** Add the requested sampling/progress to an instrumentation
     * bundle. */
    void
    addTo(Instrumentation &inst) const
    {
        if (timeseries) {
            TimeseriesConfig cfg;
            cfg.window = static_cast<Cycle>(window);
            cfg.auto_steady = auto_steady;
            cfg.warmup_reset = static_cast<Cycle>(warmup);
            inst.timeseries = cfg;
        }
        if (progress)
            inst.progress = ProgressMeter::Config{};
    }

    /** The `timeseries` report section ("null" when sampling is off). */
    std::string
    jsonSection(Machine &m) const
    {
        return m.timeseries() != nullptr ? m.timeseriesJson() : "null";
    }

    /** Write the heatmap CSV and terminate the progress line. */
    void
    write(Machine &m) const
    {
        if (m.progress() != nullptr)
            m.progress()->finish();
        if (heatmap != nullptr && m.timeseries() != nullptr) {
            writeFile(heatmap, m.heatmapCsv());
            std::printf("Heatmap CSV written to %s\n", heatmap);
        }
    }
};

/**
 * Shared runtime-auditor flags for the figure benches:
 *   --audit <N>           run the invariant audit every N cycles
 *   --watchdog <N>        probe forward progress every N cycles
 *   --stall-threshold <N> ejection-stall trip point in cycles
 *                         (default 20000)
 *   --snapshot <path>     write a forensic snapshot JSON: the watchdog's
 *                         trip snapshot if it fired, else an end-of-run
 *                         snapshot (implies --watchdog)
 *   --snapshot-dot <path> the same snapshot's waits-for graph as
 *                         Graphviz DOT (implies --watchdog)
 *   --fault <name>        arm a seeded negative-control fault before
 *                         simulating: `withhold-credit` (node 0 drops
 *                         every credit returning on its X+ slice-0 link)
 *                         or `no-promotion` (the node at the X dateline
 *                         skips VC promotion on its X+ slice-0 egress)
 * Paths are validated before any simulation time is spent.
 */
struct AuditOptions
{
    long audit = 0;
    long watchdog = 0;
    long stall_threshold = 20000;
    const char *snapshot = nullptr;
    const char *snapshot_dot = nullptr;
    const char *fault = nullptr;

    /** Declare the shared auditor flags on @p reg. */
    void
    registerInto(OptionRegistry &reg)
    {
        reg.add("--audit", "N", "run the invariant audit every N cycles",
                &audit);
        reg.add("--watchdog", "N", "probe forward progress every N cycles",
                &watchdog);
        reg.add("--stall-threshold", "N",
                "ejection-stall trip point in cycles (default 20000)",
                &stall_threshold);
        reg.add("--snapshot", "PATH",
                "write a forensic snapshot JSON (implies --watchdog)",
                &snapshot);
        reg.add("--snapshot-dot", "PATH",
                "write the snapshot's waits-for graph as Graphviz DOT "
                "(implies --watchdog)",
                &snapshot_dot);
        reg.add("--fault", "NAME",
                "arm a seeded negative-control fault: withhold-credit or "
                "no-promotion (implies --watchdog)",
                &fault);
    }

    bool enabled() const { return audit > 0 || watchdog > 0; }

    /** Resolve flag implications; fail fast on unwritable paths / bad
     * cadences / unknown faults. Call once, after parse(). */
    bool
    validate()
    {
        // A requested snapshot or fault without an explicit cadence still
        // needs the watchdog armed to classify and capture the wedge.
        if ((snapshot != nullptr || snapshot_dot != nullptr
             || fault != nullptr)
            && watchdog == 0) {
            watchdog = 1024;
        }
        if (audit < 0 || watchdog < 0 || stall_threshold < 1) {
            std::fprintf(stderr,
                         "error: --audit/--watchdog must be >= 0 and "
                         "--stall-threshold >= 1\n");
            return false;
        }
        if (fault != nullptr && std::strcmp(fault, "withhold-credit") != 0
            && std::strcmp(fault, "no-promotion") != 0) {
            std::fprintf(stderr,
                         "error: --fault must be withhold-credit or "
                         "no-promotion\n");
            return false;
        }
        return validateOutputPaths({ snapshot, snapshot_dot });
    }

    /** Add the requested fault and auditor to an instrumentation
     * bundle (@p geom locates the dateline node for no-promotion). */
    void
    addTo(Instrumentation &inst, const TorusGeom &geom) const
    {
        if (fault != nullptr) {
            NetworkFault f;
            if (std::strcmp(fault, "withhold-credit") == 0) {
                f.kind = NetworkFault::Kind::WithholdTorusCredits;
                f.node = 0;
            } else {
                f.kind = NetworkFault::Kind::NoDatelinePromotion;
                // The dateline sits between coordinates k-1 and 0, so the
                // node at x = k-1 is the one whose X+ egress must promote.
                Coords c(static_cast<std::size_t>(geom.ndims()), 0);
                c[0] = geom.radix(0) - 1;
                f.node = geom.id(c);
            }
            inst.faults.push_back(f);
        }
        if (!enabled())
            return;
        AuditConfig cfg;
        cfg.audit_interval = static_cast<Cycle>(audit);
        cfg.watchdog_interval = static_cast<Cycle>(watchdog);
        cfg.stall_threshold = static_cast<Cycle>(stall_threshold);
        inst.audit = cfg;
    }

    /** The `audit` report section ("null" when the auditor is off). */
    std::string
    jsonSection(Machine &m) const
    {
        return m.audit() != nullptr ? m.audit()->reportJson() : "null";
    }

    /** Write the snapshot JSON / DOT (trip snapshot when tripped). */
    void
    write(Machine &m) const
    {
        if (snapshot == nullptr && snapshot_dot == nullptr)
            return;
        MachineSnapshot snap;
        if (m.audit() != nullptr && m.audit()->tripped())
            snap = *m.audit()->tripSnapshot();
        else
            snap = m.dumpSnapshot("end_of_run");
        if (snapshot != nullptr) {
            writeFile(snapshot, snapshotJson(snap));
            std::printf("Snapshot JSON written to %s\n", snapshot);
        }
        if (snapshot_dot != nullptr) {
            writeFile(snapshot_dot, waitsForDot(snap));
            std::printf("Waits-for DOT written to %s\n", snapshot_dot);
        }
        if (m.audit() != nullptr && m.audit()->tripped()) {
            std::fprintf(stderr, "warning: watchdog tripped (%s) at cycle "
                                 "%llu\n",
                         m.audit()->tripSnapshot()->verdict.c_str(),
                         static_cast<unsigned long long>(
                             m.audit()->tripSnapshot()->now));
        }
    }
};

/**
 * Shared engine self-profiling flags for the Machine-driving benches:
 *   --host-profile[=PATH]      profile the lookahead-window engine loop
 *                              (per-lane tick / barrier-wait / serial
 *                              replay seconds, straggler shard, sampled
 *                              component-class attribution). With =PATH,
 *                              also write a Chrome-trace host timeline
 *                              (workers as tids, windows as slices).
 *   --host-profile-sample <N>  attribute shards/component classes every
 *                              Nth window (default 16; 1 = every window)
 * Profiling only reads the host clock and writes its own buffers, so
 * every deterministic export stays byte-identical with it on or off.
 * The timeline path must be attached with `=` (it is optional).
 */
struct HostProfileOptions
{
    bool enabled = false;
    const char *timeline = nullptr;
    long sample_every = 16;

    /** Declare the shared profiling flags on @p reg. */
    void
    registerInto(OptionRegistry &reg)
    {
        reg.addOptional("--host-profile", "PATH",
                        "profile the engine host loop; =PATH also writes "
                        "a Chrome-trace host timeline",
                        &enabled, &timeline);
        reg.add("--host-profile-sample", "N",
                "attribute component classes every Nth window "
                "(default 16)",
                &sample_every);
    }

    /** Resolve implications (a timeline path implies profiling); fail
     * fast on bad cadences / unwritable paths. Call after parse(). */
    bool
    validate()
    {
        enabled = enabled || timeline != nullptr;
        if (sample_every < 1) {
            std::fprintf(stderr,
                         "error: --host-profile-sample must be >= 1\n");
            return false;
        }
        return validateOutputPaths({ timeline });
    }

    /** Add the requested profiling to an instrumentation bundle. */
    void
    addTo(Instrumentation &inst) const
    {
        if (!enabled)
            return;
        EngineProfileConfig cfg;
        cfg.sample_every = static_cast<Cycle>(sample_every);
        inst.host_profile = cfg;
    }

    /** Write the Chrome-trace host timeline when a path was given. */
    void
    write(Machine &m) const
    {
        if (timeline != nullptr && m.hostProfile() != nullptr) {
            writeFile(timeline, m.hostTimelineChromeJson());
            std::printf("Host timeline written to %s\n", timeline);
        }
    }
};

/** A host timeline is one run's worth of window slices: benches that
 * measure several configurations back to back (bench_host_speed's
 * thread sweep) would overwrite it with whichever run finished last.
 * Gate on the measured-run count; false = refuse to simulate. */
inline bool
validateTimelineSingleRun(const HostProfileOptions &hp,
                          std::size_t run_count)
{
    if (hp.timeline != nullptr && run_count != 1) {
        std::fprintf(stderr,
                     "error: --host-profile=PATH writes one run's "
                     "timeline; measure a single thread count "
                     "(--threads-list N)\n");
        return false;
    }
    return true;
}

/**
 * Shared checkpoint flags for the Machine-driving benches:
 *   --checkpoint-out PATH  write a machine checkpoint: at steady-state
 *                          convergence when --auto-steady is on (the
 *                          warm-start image the batch runner forks
 *                          from), else at the end of the run
 *   --checkpoint-in PATH   restore the machine from a checkpoint before
 *                          simulating; the run report's
 *                          `run.checkpoint` section records the source
 *                          path and fork cycle
 * Benches thread these into the RunSpec of their final measured run.
 * Output paths are validated before any simulation time is spent.
 */
struct CheckpointOptions
{
    const char *in = nullptr;
    const char *out = nullptr;

    /** Declare the shared checkpoint flags on @p reg. */
    void
    registerInto(OptionRegistry &reg)
    {
        reg.add("--checkpoint-in", "PATH",
                "restore the machine from a checkpoint before simulating",
                &in);
        reg.add("--checkpoint-out", "PATH",
                "write a checkpoint (at --auto-steady convergence, else "
                "at end of run)",
                &out);
    }

    bool enabled() const { return in != nullptr || out != nullptr; }

    /** Fail fast on unwritable output paths. */
    bool validate() const { return validateOutputPaths({ out }); }

    /** Thread the requested checkpoint I/O into a run spec. */
    void
    addTo(RunSpec &spec) const
    {
        if (in != nullptr)
            spec.checkpoint_in = in;
        if (out != nullptr)
            spec.checkpoint_out = out;
    }
};

/**
 * Shared run-report flags for the figure benches:
 *   --metrics-level LEVEL  telemetry granularity: machine, chip, router,
 *                          or full (default full). `machine` keeps the
 *                          registry O(chips) on an 8x8x8 run; rollups
 *                          and the hot-spot digest stay byte-identical
 *                          at every level.
 *   --report PATH          write the single-artifact run report JSON
 *                          (implies metrics)
 *   --topk N               hot-spot digest size (default 8)
 * The report merges bench config, the Machine's deterministic body
 * (rollups, digest, steady state, audit verdict), and the host profile;
 * the host section is the LAST key, so byte-comparisons across thread
 * counts stop at `"host":`. Paths are validated before simulating.
 */
struct ReportOptions
{
    const char *level_name = nullptr;
    const char *report = nullptr;
    long topk = 8;
    MetricsLevel level = MetricsLevel::Full;

    /** Declare the shared report flags on @p reg. */
    void
    registerInto(OptionRegistry &reg)
    {
        reg.add("--metrics-level", "LEVEL",
                "telemetry granularity: machine, chip, router, or full "
                "(default full)",
                &level_name);
        reg.add("--report", "PATH",
                "write the single-artifact run report JSON (implies "
                "metrics)",
                &report);
        reg.add("--topk", "N", "hot-spot digest size (default 8)", &topk);
    }

    bool enabled() const { return report != nullptr; }

    /** Parse the level, fail fast on bad values / unwritable paths. */
    bool
    validate()
    {
        if (level_name != nullptr
            && !parseMetricsLevel(level_name, level)) {
            std::fprintf(stderr,
                         "error: --metrics-level must be machine, chip, "
                         "router, or full\n");
            return false;
        }
        if (topk < 1) {
            std::fprintf(stderr, "error: --topk must be >= 1\n");
            return false;
        }
        return validateOutputPaths({ report });
    }

    /** Contribute to an instrumentation bundle: the level always (it
     * only takes effect when metrics engage), metrics when a report
     * was requested. */
    void
    addTo(Instrumentation &inst) const
    {
        inst.metrics_level = level;
        if (report != nullptr)
            inst.metrics = true;
    }

    /** The deterministic report body ("" when --report is off). Call on
     * the probe Machine before it is destroyed. */
    std::string
    bodyJson(Machine &m) const
    {
        return report != nullptr
                   ? m.runReportJson(static_cast<std::size_t>(topk))
                   : std::string();
    }

    /**
     * Compose and write the run report: report_version / bench / config
     * first, the deterministic body under "run", and the
     * non-deterministic host section last. No-op when --report is off
     * or the probe run never produced a body. @p config_json must carry
     * only experiment parameters (radix, cores, seed, ...) - never the
     * thread count or lookahead window - so everything before the
     * `"host"` key stays byte-identical across thread counts.
     */
    void
    write(const char *bench_name, const std::string &config_json,
          const std::string &body, const std::string &host_json) const
    {
        if (report == nullptr || body.empty())
            return;
        writeFile(report,
                  JsonObj()
                      .add("report_version", num(2))
                      .add("bench", str(bench_name))
                      .add("config", config_json)
                      .add("run", body)
                      .add("host",
                           host_json.empty() ? "null" : host_json)
                      .dump()
                      + "\n");
        std::printf("Run report written to %s\n", report);
    }
};

/**
 * The full shared option set for a Machine-driving bench: `--threads`
 * plus the tracing / time-series / auditor / report groups. One
 * registerInto() declares every shared flag, one validate() resolves
 * implications and fail-fasts, and one apply() configures a Machine
 * through the unified Machine::attachInstrumentation() call.
 */
struct RunOptions
{
    long threads = 1;
    long lookahead = 1;
    TraceOptions trace;
    FlowOptions flows;
    TimeseriesOptions ts;
    AuditOptions audit;
    HostProfileOptions host_profile;
    ReportOptions report;
    CheckpointOptions ckpt;

    void
    registerInto(OptionRegistry &reg)
    {
        reg.add("--threads", "N",
                "engine worker threads (results are bit-identical at "
                "any count)",
                &threads);
        reg.add("--lookahead", "N",
                "cycles per barrier window: 0 = auto (min torus link "
                "latency), 1 = per-cycle barriers (default)",
                &lookahead);
        trace.registerInto(reg);
        flows.registerInto(reg);
        ts.registerInto(reg);
        audit.registerInto(reg);
        host_profile.registerInto(reg);
        report.registerInto(reg);
        ckpt.registerInto(reg);
    }

    /** Resolve implications and fail fast; call once after parse(). */
    bool
    validate()
    {
        if (threads < 1) {
            std::fprintf(stderr, "error: --threads must be >= 1\n");
            return false;
        }
        if (lookahead < 0) {
            std::fprintf(stderr, "error: --lookahead must be >= 0\n");
            return false;
        }
        return trace.validate() && flows.validate() && ts.validate()
               && audit.validate() && host_profile.validate()
               && report.validate() && ckpt.validate();
    }

    /** The bundle every requested option group contributes to. */
    Instrumentation
    instrumentation(const Machine &m, bool metrics = false) const
    {
        Instrumentation inst;
        inst.metrics = metrics;
        trace.addTo(inst);
        flows.addTo(inst);
        ts.addTo(inst);
        audit.addTo(inst, m.geom());
        host_profile.addTo(inst);
        report.addTo(inst);
        return inst;
    }

    /** Configure @p m: worker count, lookahead window, and one
     * attachInstrumentation(). Window before instrumentation: tracing
     * and sampling may truncate or disable parts of the window. */
    void
    apply(Machine &m, bool metrics = false) const
    {
        m.setThreads(static_cast<int>(threads));
        m.setLookahead(static_cast<Cycle>(lookahead));
        m.attachInstrumentation(instrumentation(m, metrics));
    }

    /** Write every requested export of @p m (trace, heatmap, snapshot). */
    void
    writeOutputs(Machine &m) const
    {
        trace.write(m);
        flows.write(m);
        ts.write(m);
        audit.write(m);
        host_profile.write(m);
    }
};

/**
 * The bench-report `host` section: wall time, phases, and simulated
 * cycles per wall second from a HostProfiler. Host-dependent by nature,
 * so it lives *outside* the deterministic `metrics`/`timeseries`
 * sections - byte-compare those, not this.
 */
inline std::string
hostJson(const HostProfiler &prof, Cycle cycles, std::size_t components)
{
    return prof.toJson(cycles, components);
}

/** Record the simulator's memory footprint on @p prof (peak RSS plus
 * the packet-pool and metric-registry sizes from @p m), so the host
 * section carries the `machine.host.mem.*` gauges - and, when the
 * engine profiler is attached, fold its `engine.*` gauges in too (lane
 * tick / barrier-wait seconds, straggler shard, class attribution), so
 * every bench's host section carries `machine.host.engine.*` without
 * per-bench wiring. Call right before hostJson(). */
inline void
recordHostMem(HostProfiler &prof, Machine &m)
{
    prof.setMemStats(m.packetPoolBytes(),
                     m.metrics() != nullptr ? m.metrics()->approxBytes()
                                            : 0);
    if (m.hostProfile() != nullptr) {
        for (const auto &[key, value] : m.hostProfile()->gauges())
            prof.setExtraGauge(key, value);
    }
}

/** Render a possibly-NaN value for the text tables ("-" when empty). */
inline std::string
fmtOrDash(double x, const char *fmt = "%.1f")
{
    if (std::isnan(x))
        return "-";
    char buf[48];
    std::snprintf(buf, sizeof(buf), fmt, x);
    return buf;
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
printRule(int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace anton2::bench
