/**
 * @file
 * Microbenchmarks of the arbiter implementations (Section 3): the
 * gate-level Figure 8 mirror versus the behavioral reference, the full
 * inverse-weighted arbiter, and the baselines. Uses google-benchmark.
 *
 * These are software microbenchmarks of the simulator's hot arbitration
 * path; the paper's latency claim (prioritized arbitration in
 * ceil(log2(k-1)) prefix stages) is a hardware property mirrored by the
 * GateLevelPriorityArb structure.
 */
#include <benchmark/benchmark.h>

#include "arb/basic_arbiters.hpp"
#include "arb/inverse_weighted.hpp"
#include "arb/priority_arb.hpp"
#include "sim/rng.hpp"

using namespace anton2;

namespace {

void
BM_GateLevelGrant(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const GateLevelPriorityArb arb(k, 2);
    std::uint8_t pri[32];
    Rng rng(1);
    for (int i = 0; i < k; ++i)
        pri[i] = static_cast<std::uint8_t>(rng.below(2));
    std::uint32_t req = (1u << k) - 1;
    std::uint32_t therm = (1u << (k / 2)) - 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(arb.grant(req, pri, therm));
        req = (req * 2654435761u) | 1u;
        req &= (1u << k) - 1;
    }
}
BENCHMARK(BM_GateLevelGrant)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void
BM_ReferenceGrant(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    std::uint8_t pri[32];
    Rng rng(1);
    for (int i = 0; i < k; ++i)
        pri[i] = static_cast<std::uint8_t>(rng.below(2));
    std::uint32_t req = (1u << k) - 1;
    const std::uint32_t therm = (1u << (k / 2)) - 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            priorityArbReference(k, 2, req, pri, therm));
        req = (req * 2654435761u) | 1u;
        req &= (1u << k) - 1;
    }
}
BENCHMARK(BM_ReferenceGrant)->Arg(6);

void
BM_InverseWeightedPick(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    InverseWeightedArbiter arb(k);
    for (int i = 0; i < k; ++i) {
        arb.accumulators().setWeight(i, 0, 1 + i * 3);
        arb.accumulators().setWeight(i, 1, 31 - i * 3);
    }
    ReqInfo info[32];
    const std::uint32_t req = (1u << k) - 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.pick(req, info));
}
BENCHMARK(BM_InverseWeightedPick)->Arg(6);

void
BM_RoundRobinPick(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    RoundRobinArbiter arb(k);
    const std::uint32_t req = (1u << k) - 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.pick(req, nullptr));
}
BENCHMARK(BM_RoundRobinPick)->Arg(6);

void
BM_AgeBasedPick(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    AgeBasedArbiter arb(k);
    ReqInfo info[32];
    for (int i = 0; i < k; ++i)
        info[i].age = static_cast<std::uint64_t>(1000 - i * 17);
    const std::uint32_t req = (1u << k) - 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(arb.pick(req, info));
}
BENCHMARK(BM_AgeBasedPick)->Arg(6);

} // namespace

BENCHMARK_MAIN();
